// Package reliability is the FAULTSIM-style Monte Carlo memory
// reliability simulator behind Fig. 11. It injects DRAM faults with the
// field-measured FIT rates of Table I (Sridharan et al.) into a
// multi-rank memory over a 7-year lifetime and evaluates, per
// protection scheme, whether an uncorrectable pattern arises:
//
//	NoECC    — any fault is fatal.
//	SECDED   — per-word single-bit correction: any multi-bit-per-word
//	           footprint (word/row/bank faults) is fatal; single-bit
//	           and single-DQ column faults are corrected unless two
//	           such faults intersect the same word.
//	Chipkill — corrects one failed chip per 18-chip (two-rank lockstep)
//	           group; two intersecting faults on distinct chips fail.
//	Synergy  — corrects one failed chip per 9-chip rank group (the MAC
//	           detects, the 9-chip parity corrects); two intersecting
//	           faults on distinct chips of a rank fail.
//
// The paper's headline ratios (Chipkill 37× and Synergy 185× better
// than SECDED) come from exactly this structure: SECDED dies on its
// first large-footprint fault, while the chip-correcting schemes need
// two co-located faulty chips, and Synergy's smaller group halves the
// number of fatal chip pairs per system.
package reliability

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"synergy/internal/stats"
	"synergy/internal/telemetry"
)

// FaultMode enumerates the Table I DRAM failure modes.
type FaultMode int

const (
	// Bit is a single-bit fault.
	Bit FaultMode = iota
	// Word is a multi-bit fault within one word.
	Word
	// Column is a single-DQ column fault (one bit of many words).
	Column
	// Row is a single-row fault (all bits of the row).
	Row
	// Bank is a single-bank fault.
	Bank
	// MultiBank spans several banks of one chip.
	MultiBank
	// MultiRank affects the same chip position across ranks.
	MultiRank
	numModes
)

// MarshalText renders the mode name, so JSON maps keyed by FaultMode
// (Result.FailuresByMode) serialize with readable keys.
func (m FaultMode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText parses a mode name (inverse of MarshalText).
func (m *FaultMode) UnmarshalText(b []byte) error {
	for c := FaultMode(0); c < numModes; c++ {
		if string(b) == c.String() {
			*m = c
			return nil
		}
	}
	return fmt.Errorf("reliability: unknown fault mode %q", b)
}

func (m FaultMode) String() string {
	switch m {
	case Bit:
		return "bit"
	case Word:
		return "word"
	case Column:
		return "column"
	case Row:
		return "row"
	case Bank:
		return "bank"
	case MultiBank:
		return "multi-bank"
	case MultiRank:
		return "multi-rank"
	default:
		return "unknown"
	}
}

// ModeRate holds transient and permanent FIT (failures per 10^9
// device-hours) for one mode.
type ModeRate struct {
	Transient float64
	Permanent float64
}

// TableI reproduces the paper's Table I fault rates per DRAM chip.
var TableI = map[FaultMode]ModeRate{
	Bit:       {Transient: 14.2, Permanent: 18.6},
	Word:      {Transient: 1.4, Permanent: 0.3},
	Column:    {Transient: 1.4, Permanent: 5.6},
	Row:       {Transient: 0.2, Permanent: 8.2},
	Bank:      {Transient: 0.8, Permanent: 10},
	MultiBank: {Transient: 0.3, Permanent: 1.4},
	MultiRank: {Transient: 0.9, Permanent: 2.8},
}

// Policy selects the protection scheme being evaluated.
type Policy int

const (
	// NoECC has no protection.
	NoECC Policy = iota
	// SECDED is the conventional ECC-DIMM code (paper baseline).
	SECDED
	// Chipkill corrects one chip per 18-chip lockstep group.
	Chipkill
	// Synergy corrects one chip per 9-chip rank.
	Synergy
)

// MarshalText renders the policy name for JSON output.
func (p Policy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses a policy name (inverse of MarshalText).
func (p *Policy) UnmarshalText(b []byte) error {
	for _, c := range Policies {
		if string(b) == c.String() {
			*p = c
			return nil
		}
	}
	return fmt.Errorf("reliability: unknown policy %q", b)
}

func (p Policy) String() string {
	switch p {
	case NoECC:
		return "NoECC"
	case SECDED:
		return "SECDED"
	case Chipkill:
		return "Chipkill"
	case Synergy:
		return "Synergy"
	default:
		return "unknown"
	}
}

// Geometry is the per-chip array organization used for fault-footprint
// intersection (Table III defaults).
type Geometry struct {
	Banks int
	Rows  int
	Cols  int
}

// Config parameterizes the Monte Carlo.
type Config struct {
	// Ranks in the system; each rank has ChipsPerRank chips (9 for
	// ECC-DIMMs). Chipkill groups rank pairs; with an odd rank count
	// the last rank runs as its own degraded group.
	Ranks        int
	ChipsPerRank int
	// LifetimeHours is the evaluation window (paper: 7 years).
	LifetimeHours float64
	// ScrubHours is how long a transient fault persists before patrol
	// scrubbing repairs it. Permanent faults persist forever.
	ScrubHours float64
	Geometry   Geometry
	Rates      map[FaultMode]ModeRate
	Trials     int
	Seed       int64
	// Workers bounds the Monte Carlo worker pool; 0 (or negative)
	// means GOMAXPROCS. Every trial's RNG is derived from
	// (Seed, trial index), so the Result is bit-identical for any
	// worker count.
	Workers int
	// TargetCIWidth, when positive, stops the run early once the 95%
	// Wilson interval on P(fail) is at most this wide. The check runs
	// on block boundaries in trial order, so the stopping point — and
	// therefore the Result, including Trials actually run — is
	// deterministic for a given seed regardless of Workers.
	TargetCIWidth float64
	// Progress, when non-nil, is called after each merged block of
	// trials with the cumulative trials completed and failures seen.
	// Calls are serialized and arrive in trial order; keep the
	// callback fast.
	Progress func(trialsDone, failures int)
	// Telemetry, when non-nil, receives trial throughput (the "trial"
	// op counter) as blocks merge, so a live /metrics endpoint shows
	// Monte Carlo progress. It never affects results.
	Telemetry *telemetry.Registry
}

// IVECConfig returns the §VII-A comparison point: IVEC on commodity x4
// DIMMs corrects one chip per 16-chip rank. x4 chips are half as wide,
// so the same capacity needs twice as many chips (4 ranks × 16); chip
// fault rates are taken from Table I unchanged (a documented
// approximation — Sridharan's rates are per-device and largely
// width-independent). Evaluate it with the Synergy policy, whose rule
// ("one faulty chip per rank-group is correctable") is exactly IVEC's.
func IVECConfig() Config {
	cfg := DefaultConfig()
	cfg.ChipsPerRank = 16
	return cfg
}

// DefaultConfig returns the paper's evaluation setup: 4 ranks of 9
// chips (2 channels × 2 ranks), 7-year lifetime, Table I rates.
func DefaultConfig() Config {
	return Config{
		Ranks:         4,
		ChipsPerRank:  9,
		LifetimeHours: 7 * 365.25 * 24,
		ScrubHours:    24,
		Geometry:      Geometry{Banks: 8, Rows: 64 * 1024, Cols: 128},
		Rates:         TableI,
		Trials:        200_000,
		Seed:          1,
	}
}

// fault is one sampled fault instance.
type fault struct {
	chip       int // global chip index
	mode       FaultMode
	transient  bool
	start, end float64
	bankLo     int
	bankHi     int
	rowLo      int
	rowHi      int
	colLo      int
	colHi      int
}

func overlap(a, b *fault) bool {
	if a.end < b.start || b.end < a.start {
		return false
	}
	return a.bankLo <= b.bankHi && b.bankLo <= a.bankHi &&
		a.rowLo <= b.rowHi && b.rowLo <= a.rowHi &&
		a.colLo <= b.colHi && b.colLo <= a.colHi
}

// secdedFatal reports whether a single fault overwhelms SECDED: any
// footprint placing more than one bit in a 72-bit word. Row, bank and
// word faults do; bit faults and single-DQ column faults do not.
func secdedFatal(m FaultMode) bool {
	switch m {
	case Word, Row, Bank, MultiBank, MultiRank:
		return true
	default:
		return false
	}
}

// Result summarizes a Monte Carlo run. With early stopping enabled,
// Trials reports the trials actually run, and every other field is
// computed over exactly those trials.
type Result struct {
	Policy      Policy  `json:"policy"`
	Trials      int     `json:"trials"`
	Failures    int     `json:"failures"`
	Probability float64 `json:"probability"`
	WilsonLo    float64 `json:"wilson_lo"`
	WilsonHi    float64 `json:"wilson_hi"`
	// MeanFaults is the average number of injected faults per system
	// lifetime — injected, so a MultiRank arrival's twin-chip pair
	// counts as two.
	MeanFaults float64 `json:"mean_faults"`
	// FailuresByMode attributes each failed trial to the fault mode
	// that triggered the uncorrectable condition — which failure modes
	// a protection scheme is actually vulnerable to.
	FailuresByMode map[FaultMode]int `json:"failures_by_mode"`
}

// trialBlock is the unit of work handed to workers and the granularity
// of streaming aggregation, Progress reporting and the early-stop
// check. Blocks are merged strictly in trial order, so the early-stop
// point depends only on (seed, config), never on scheduling.
const trialBlock = 4096

// model is the precomputed sampling distribution for one Config.
type model struct {
	entries    []modeEntry
	chipLambda float64
	sysLambda  float64
	chips      int
}

func buildModel(cfg Config) model {
	m := model{chips: cfg.Ranks * cfg.ChipsPerRank}
	for mode := FaultMode(0); mode < numModes; mode++ {
		r, ok := cfg.Rates[mode]
		if !ok {
			continue
		}
		tr := r.Transient * 1e-9 * cfg.LifetimeHours
		pr := r.Permanent * 1e-9 * cfg.LifetimeHours
		m.entries = append(m.entries,
			modeEntry{mode, true, tr}, modeEntry{mode, false, pr})
		m.chipLambda += tr + pr
	}
	m.sysLambda = m.chipLambda * float64(m.chips)
	return m
}

// blockStats is one block's commutative aggregate.
type blockStats struct {
	idx      int
	trials   int
	failures int
	faults   int
	byMode   [numModes]int
}

// simBlock runs trials [lo, hi) of the Monte Carlo. Each trial reseeds
// its RNG from (cfg.Seed, global trial index); fault sampling consumes
// randomness identically under every policy, so one seed exposes every
// policy to the same fault histories.
func simBlock(policy Policy, cfg Config, m *model, idx, lo, hi int) blockStats {
	s := blockStats{idx: idx, trials: hi - lo}
	var r rng
	var active []fault
	for trial := lo; trial < hi; trial++ {
		r.reseed(cfg.Seed, uint64(trial))
		n := poisson(&r, m.sysLambda)
		if n == 0 {
			continue
		}
		active = active[:0]
		for i := 0; i < n; i++ {
			chip := r.Intn(m.chips)
			me := pick(&r, m.entries, m.chipLambda)
			active = append(active, sampleFault(&r, chip, me.mode, me.transient, cfg)...)
		}
		// Injected faults, not sampled arrivals: a MultiRank arrival
		// expands into a twin-chip pair and both count.
		s.faults += len(active)
		sort.Slice(active, func(i, j int) bool { return active[i].start < active[j].start })
		if fails, mode := systemFailsMode(policy, active, cfg); fails {
			s.failures++
			s.byMode[mode]++
		}
	}
	return s
}

// aggregator folds blocks, in trial order, into the running totals and
// applies the Progress callback and early-stop rule.
type aggregator struct {
	cfg      Config
	trials   int
	failures int
	faults   int
	byMode   [numModes]int
	done     bool
}

func (a *aggregator) merge(s blockStats) {
	a.cfg.Telemetry.AddTrials(s.trials)
	a.trials += s.trials
	a.failures += s.failures
	a.faults += s.faults
	for m, n := range s.byMode {
		a.byMode[m] += n
	}
	if a.cfg.Progress != nil {
		a.cfg.Progress(a.trials, a.failures)
	}
	if a.cfg.TargetCIWidth > 0 &&
		stats.WilsonWidth(uint64(a.failures), uint64(a.trials)) <= a.cfg.TargetCIWidth {
		a.done = true
	}
}

func (a *aggregator) result(policy Policy) Result {
	p := float64(a.failures) / float64(a.trials)
	lo, hi := stats.WilsonInterval(uint64(a.failures), uint64(a.trials))
	byMode := map[FaultMode]int{}
	for m, n := range a.byMode {
		if n > 0 {
			byMode[FaultMode(m)] = n
		}
	}
	return Result{
		Policy:         policy,
		Trials:         a.trials,
		Failures:       a.failures,
		Probability:    p,
		WilsonLo:       lo,
		WilsonHi:       hi,
		MeanFaults:     float64(a.faults) / float64(a.trials),
		FailuresByMode: byMode,
	}
}

// Simulate runs the Monte Carlo for one policy across a
// GOMAXPROCS-bounded worker pool. Trials are sharded into fixed blocks
// claimed from an atomic cursor; each trial's RNG derives from
// (Seed, trial index), and block aggregates merge in trial order, so
// the Result — failures, per-mode attribution, mean faults, and the
// TargetCIWidth stopping point — is bit-identical for any Workers
// setting. With early stop, Result.Trials reports trials actually run.
func Simulate(policy Policy, cfg Config) (Result, error) {
	return SimulateContext(context.Background(), policy, cfg)
}

// SimulateContext is Simulate with cancellation: when ctx is cancelled
// the run stops at the next block boundary and returns the partial
// Result (aggregated over the blocks merged so far, still in strict
// trial order — the prefix is the same one an uncancelled run would
// have produced) together with ctx's error.
func SimulateContext(ctx context.Context, policy Policy, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Trials <= 0 || cfg.Ranks <= 0 || cfg.ChipsPerRank <= 0 {
		return Result{}, errors.New("reliability: Trials, Ranks, ChipsPerRank must be positive")
	}
	if cfg.LifetimeHours <= 0 || cfg.Geometry.Banks <= 0 {
		return Result{}, errors.New("reliability: lifetime and geometry must be positive")
	}
	m := buildModel(cfg)
	numBlocks := (cfg.Trials + trialBlock - 1) / trialBlock
	bounds := func(b int) (lo, hi int) {
		lo = b * trialBlock
		hi = lo + trialBlock
		if hi > cfg.Trials {
			hi = cfg.Trials
		}
		return lo, hi
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numBlocks {
		workers = numBlocks
	}

	agg := aggregator{cfg: cfg}
	if workers == 1 {
		// Serial fast path: same block walk, no pool.
		for b := 0; b < numBlocks && !agg.done; b++ {
			if err := ctx.Err(); err != nil {
				return agg.result(policy), err
			}
			lo, hi := bounds(b)
			agg.merge(simBlock(policy, cfg, &m, b, lo, hi))
		}
		return agg.result(policy), nil
	}

	var (
		cursor int64
		stop   atomic.Bool
		wg     sync.WaitGroup
		out    = make(chan blockStats, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				b := int(atomic.AddInt64(&cursor, 1)) - 1
				if b >= numBlocks {
					return
				}
				lo, hi := bounds(b)
				out <- simBlock(policy, cfg, &m, b, lo, hi)
			}
		}()
	}
	go func() { wg.Wait(); close(out) }()

	// Blocks complete out of order; buffer them and merge strictly in
	// index order so aggregation, Progress and the stop decision are
	// scheduling-independent. Blocks past the stopping point (early stop
	// or cancellation) are discarded.
	pending := make(map[int]blockStats, workers)
	next := 0
	doneCh := ctx.Done()
	var ctxErr error
	for {
		select {
		case s, ok := <-out:
			if !ok {
				return agg.result(policy), ctxErr
			}
			if agg.done {
				continue // drain until workers exit
			}
			pending[s.idx] = s
			for {
				b, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				agg.merge(b)
				if agg.done {
					stop.Store(true)
					break
				}
			}
		case <-doneCh:
			// Stop claiming new blocks and drain in-flight ones without
			// merging; doneCh goes nil so this arm fires exactly once.
			ctxErr = ctx.Err()
			stop.Store(true)
			agg.done = true
			doneCh = nil
		}
	}
}

// Policies is the Fig. 11 sweep order.
var Policies = []Policy{NoECC, SECDED, Chipkill, Synergy}

// SimulateAll runs the Monte Carlo for each policy (default: the
// Fig. 11 sweep NoECC, SECDED, Chipkill, Synergy) under one Config.
// Because fault sampling is policy-independent and per-trial seeded,
// every policy is evaluated against the same fault histories — the
// paper's ratios (Chipkill/SECDED, Synergy/SECDED) are measured on
// common random numbers rather than independent noise.
func SimulateAll(cfg Config, policies ...Policy) ([]Result, error) {
	return SimulateAllContext(context.Background(), cfg, policies...)
}

// SimulateAllContext is SimulateAll with cancellation: the sweep stops
// at the first policy whose run is interrupted and returns the results
// of the policies completed before it together with ctx's error.
func SimulateAllContext(ctx context.Context, cfg Config, policies ...Policy) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(policies) == 0 {
		policies = Policies
	}
	out := make([]Result, 0, len(policies))
	for _, p := range policies {
		res, err := SimulateContext(ctx, p, cfg)
		if err != nil {
			if errors.Is(err, ctx.Err()) && ctx.Err() != nil {
				return out, err
			}
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// modeEntry is one (mode, transience) sampling bucket.
type modeEntry struct {
	mode      FaultMode
	transient bool
	weight    float64
}

// pick selects a mode entry proportionally to weight.
func pick(rng *rng, entries []modeEntry, total float64) modeEntry {
	r := rng.Float64() * total
	for _, e := range entries {
		if r < e.weight {
			return e
		}
		r -= e.weight
	}
	return entries[len(entries)-1]
}

// sampleFault instantiates a fault's footprint and lifetime. MultiRank
// faults expand to whole-chip faults on the same chip position of the
// partner rank as well.
func sampleFault(rng *rng, chip int, m FaultMode, transient bool, cfg Config) []fault {
	g := cfg.Geometry
	f := fault{chip: chip, mode: m, transient: transient}
	f.start = rng.Float64() * cfg.LifetimeHours
	if transient {
		f.end = f.start + cfg.ScrubHours
	} else {
		f.end = math.Inf(1)
	}
	b := rng.Intn(g.Banks)
	r := rng.Intn(g.Rows)
	c := rng.Intn(g.Cols)
	f.bankLo, f.bankHi = b, b
	f.rowLo, f.rowHi = r, r
	f.colLo, f.colHi = c, c
	switch m {
	case Bit, Word:
		// point footprint, set above
	case Column:
		f.rowLo, f.rowHi = 0, g.Rows-1
	case Row:
		f.colLo, f.colHi = 0, g.Cols-1
	case Bank:
		f.rowLo, f.rowHi = 0, g.Rows-1
		f.colLo, f.colHi = 0, g.Cols-1
	case MultiBank:
		span := 2 + rng.Intn(3)
		hi := b + span - 1
		if hi >= g.Banks {
			hi = g.Banks - 1
		}
		f.bankLo, f.bankHi = b, hi
		f.rowLo, f.rowHi = 0, g.Rows-1
		f.colLo, f.colHi = 0, g.Cols-1
	case MultiRank:
		// Whole chip, plus its twin on the partner rank.
		f.bankLo, f.bankHi = 0, g.Banks-1
		f.rowLo, f.rowHi = 0, g.Rows-1
		f.colLo, f.colHi = 0, g.Cols-1
		twin := f
		partner := partnerRankChip(chip, cfg)
		if partner >= 0 {
			twin.chip = partner
			return []fault{f, twin}
		}
	}
	return []fault{f}
}

// partnerRankChip returns the same chip position in the paired rank
// (ranks pair 0-1, 2-3 within a channel), or -1 if there is none.
func partnerRankChip(chip int, cfg Config) int {
	rank := chip / cfg.ChipsPerRank
	pos := chip % cfg.ChipsPerRank
	partner := rank ^ 1
	if partner >= cfg.Ranks {
		return -1
	}
	return partner*cfg.ChipsPerRank + pos
}

// groupOf maps a chip to its protection group under the policy.
func groupOf(policy Policy, chip int, cfg Config) int {
	rank := chip / cfg.ChipsPerRank
	switch policy {
	case Chipkill:
		// Lockstep pairs ranks across channels: with ranks laid out
		// [ch0.r0, ch0.r1, ch1.r0, ch1.r1], group rank i of channel 0
		// with rank i of channel 1.
		half := cfg.Ranks / 2
		if half == 0 {
			return 0
		}
		// An odd rank count leaves the last rank without a lockstep
		// partner; it runs as its own degraded single-rank group.
		// (rank % half with the rounded-down half used to collapse
		// every rank of a 3-rank system into one group, inflating
		// failure correlation.)
		if cfg.Ranks%2 == 1 && rank == cfg.Ranks-1 {
			return half
		}
		return rank % half
	default:
		return rank
	}
}

// systemFails replays the fault sequence under the policy.
func systemFails(policy Policy, faults []fault, cfg Config) bool {
	fails, _ := systemFailsMode(policy, faults, cfg)
	return fails
}

// systemFailsMode additionally reports the mode of the fault that
// triggered the failure.
func systemFailsMode(policy Policy, faults []fault, cfg Config) (bool, FaultMode) {
	if len(faults) == 0 {
		return false, 0
	}
	if policy == NoECC {
		return true, faults[0].mode
	}
	for i := range faults {
		f := &faults[i]
		if policy == SECDED && secdedFatal(f.mode) {
			return true, f.mode
		}
		for j := 0; j < i; j++ {
			e := &faults[j]
			if !overlap(e, f) {
				continue
			}
			switch policy {
			case SECDED:
				// Two correctable faults sharing a word: the word has
				// two bad bits. (Same chip or different chips of the
				// rank — the 72-bit word spans all 9 chips.)
				if groupOf(policy, e.chip, cfg) == groupOf(policy, f.chip, cfg) {
					return true, f.mode
				}
			case Chipkill, Synergy:
				// One chip per group is correctable; two distinct
				// faulty chips in a group with intersecting footprints
				// are not.
				if e.chip != f.chip &&
					groupOf(policy, e.chip, cfg) == groupOf(policy, f.chip, cfg) {
					return true, f.mode
				}
			}
		}
	}
	return false, 0
}

// SDCRate returns the analytical silent-data-corruption FIT of
// Synergy's reconstruction engine (paper §IV-A): each correction event
// performs up to `attempts` MAC recomputations against a `macBits`-wide
// MAC, and correction events arrive at faultFIT.
func SDCRate(faultFIT float64, attempts int, macBits int) float64 {
	perEvent := float64(attempts) / math.Pow(2, float64(macBits))
	return faultFIT * perEvent
}
