package reliability

import (
	"math"
	"reflect"
	"runtime"
	"testing"
)

// TestParallelDeterminism is the engine's core contract: the Result —
// failures, per-mode attribution, mean faults, Wilson bounds — is
// bit-identical for any worker count.
func TestParallelDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 60_000
	for _, policy := range Policies {
		cfg.Workers = 1
		serial, err := Simulate(policy, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 8} {
			cfg.Workers = workers
			got, err := Simulate(policy, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, got) {
				t.Errorf("%s: workers=%d diverges from serial:\n  serial %+v\n  got    %+v",
					policy, workers, serial, got)
			}
		}
	}
}

// TestSharedFaultHistories: fault sampling consumes randomness
// identically under every policy, so MeanFaults — a sampling
// statistic — must agree exactly across the sweep.
func TestSharedFaultHistories(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 30_000
	results, err := SimulateAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results[1:] {
		if res.MeanFaults != results[0].MeanFaults {
			t.Errorf("%s sampled different fault histories: MeanFaults %v vs %v",
				res.Policy, res.MeanFaults, results[0].MeanFaults)
		}
		if res.Trials != results[0].Trials {
			t.Errorf("%s ran %d trials, %s ran %d", res.Policy, res.Trials,
				results[0].Policy, results[0].Trials)
		}
	}
}

// TestEarlyStop: with a loose CI target the engine stops long before
// the configured trial budget, reports the trials actually run, and
// the stopping point is identical for every worker count.
func TestEarlyStop(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 500_000
	cfg.TargetCIWidth = 0.02 // SECDED p≈0.056 pins down within a few blocks
	cfg.Workers = 1
	serial, err := Simulate(SECDED, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Trials >= cfg.Trials {
		t.Fatalf("early stop never engaged: ran all %d trials", serial.Trials)
	}
	if serial.Trials <= 0 {
		t.Fatal("no trials run")
	}
	lo, hi := serial.WilsonLo, serial.WilsonHi
	if hi-lo > cfg.TargetCIWidth {
		t.Fatalf("stopped with CI width %.4f > target %.4f", hi-lo, cfg.TargetCIWidth)
	}
	cfg.Workers = 8
	parallel, err := Simulate(SECDED, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("early-stop point depends on workers:\n  serial   %+v\n  parallel %+v", serial, parallel)
	}
}

// TestEarlyStopDisabledRunsAllTrials: TargetCIWidth = 0 keeps the old
// fixed-budget behaviour.
func TestEarlyStopDisabledRunsAllTrials(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 10_000
	res, err := Simulate(SECDED, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trials != cfg.Trials {
		t.Fatalf("ran %d trials, want %d", res.Trials, cfg.Trials)
	}
}

// TestProgressCallback: progress arrives serialized, in trial order,
// and its final report matches the Result.
func TestProgressCallback(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 20_000
	cfg.Workers = runtime.GOMAXPROCS(0) * 2
	var dones, fails []int
	cfg.Progress = func(done, failures int) {
		dones = append(dones, done)
		fails = append(fails, failures)
	}
	res, err := Simulate(SECDED, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) == 0 {
		t.Fatal("progress never called")
	}
	for i := 1; i < len(dones); i++ {
		if dones[i] <= dones[i-1] || fails[i] < fails[i-1] {
			t.Fatalf("progress not monotone at %d: %v / %v", i, dones, fails)
		}
	}
	if last := dones[len(dones)-1]; last != res.Trials {
		t.Fatalf("final progress %d, result trials %d", last, res.Trials)
	}
	if last := fails[len(fails)-1]; last != res.Failures {
		t.Fatalf("final progress failures %d, result %d", last, res.Failures)
	}
}

// TestMultiRankTwinAccounting: a MultiRank arrival injects two chip
// faults, and MeanFaults counts both (the pre-fix engine counted
// sampled arrivals, so twins were invisible in the statistics).
func TestMultiRankTwinAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 50_000
	// Only MultiRank faults, at a rate giving λ_sys ≈ 1.
	fit := 1 / (1e-9 * cfg.LifetimeHours * float64(cfg.Ranks*cfg.ChipsPerRank))
	cfg.Rates = map[FaultMode]ModeRate{MultiRank: {Permanent: fit}}
	m := buildModel(cfg)
	res, err := Simulate(NoECC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Every chip has a partner rank in the 4-rank config, so injected
	// faults = 2 × arrivals.
	want := 2 * m.sysLambda
	if math.Abs(res.MeanFaults-want)/want > 0.05 {
		t.Fatalf("MeanFaults %.4f, want ≈%.4f (twins must be counted)", res.MeanFaults, want)
	}
}

// TestChipkillOddRanks: with 3 ranks the leftover rank must form its
// own group, not collapse every rank into lockstep group 0.
func TestChipkillOddRanks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ranks = 3
	// Ranks 0 and 1 pair; rank 2 is the unpaired leftover.
	g0 := groupOf(Chipkill, 0, cfg)
	g1 := groupOf(Chipkill, cfg.ChipsPerRank, cfg)
	g2 := groupOf(Chipkill, 2*cfg.ChipsPerRank, cfg)
	if g0 != g1 {
		t.Fatalf("ranks 0 and 1 not lockstep-paired: groups %d, %d", g0, g1)
	}
	if g2 == g0 {
		t.Fatalf("leftover rank collapsed into group %d", g0)
	}
	inf := math.Inf(1)
	// Two faulty chips in the paired group -> fail.
	f := []fault{wholeChip(0, cfg, 1, inf), wholeChip(cfg.ChipsPerRank, cfg, 2, inf)}
	if !systemFails(Chipkill, f, cfg) {
		t.Fatal("Chipkill survived two faulty chips in one lockstep group")
	}
	// Faulty chip in the pair plus one in the leftover rank -> survive
	// (the pre-fix grouping failed this, inflating correlation).
	f = []fault{wholeChip(0, cfg, 1, inf), wholeChip(2*cfg.ChipsPerRank, cfg, 2, inf)}
	if systemFails(Chipkill, f, cfg) {
		t.Fatal("Chipkill failed across the leftover rank boundary")
	}
	// Two faulty chips within the leftover rank -> fail (degraded
	// single-rank group still groups its own chips).
	f = []fault{wholeChip(2*cfg.ChipsPerRank, cfg, 1, inf), wholeChip(2*cfg.ChipsPerRank+1, cfg, 2, inf)}
	if !systemFails(Chipkill, f, cfg) {
		t.Fatal("Chipkill survived two faulty chips in the leftover rank")
	}
}

// TestSingleRankChipkill: Ranks=1 must not divide by zero and treats
// the rank as one group.
func TestSingleRankChipkill(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ranks = 1
	cfg.Trials = 1_000
	if g := groupOf(Chipkill, 0, cfg); g != 0 {
		t.Fatalf("single rank group = %d", g)
	}
	if _, err := Simulate(Chipkill, cfg); err != nil {
		t.Fatal(err)
	}
}

func benchCfg(trials, workers int) Config {
	cfg := DefaultConfig()
	cfg.Trials = trials
	cfg.Workers = workers
	return cfg
}

// BenchmarkSimulateSerial measures single-worker trials/sec (one op =
// one trial); BenchmarkSimulateParallel8 the 8-worker pool. bench.sh
// captures both into BENCH_reliability.json.
func BenchmarkSimulateSerial(b *testing.B) {
	Simulate(Synergy, benchCfg(b.N, 1))
}

func BenchmarkSimulateParallel8(b *testing.B) {
	Simulate(Synergy, benchCfg(b.N, 8))
}
