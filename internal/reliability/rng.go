package reliability

import (
	"math"
	"math/bits"
)

// rng is a SplitMix64 PRNG. Each Monte Carlo trial gets its own rng
// derived from (Config.Seed, trial index), so a trial's outcome is a
// pure function of the seed and its global index — results are
// bit-identical no matter how trials are sharded across workers, and a
// trial can be replayed in isolation. SplitMix64 passes BigCrush and
// costs one multiply-xor-shift chain per draw, which matters here: the
// common trial is a single Poisson draw that lands on zero faults.
type rng struct{ state uint64 }

// golden is the SplitMix64 state increment (2^64 / φ).
const golden = 0x9E3779B97F4A7C15

// mix64 is the SplitMix64 output finalizer (Stafford variant 13).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// reseed positions the stream for one (seed, trial) pair. The seed is
// hashed before the trial offset is folded in so that adjacent trials
// and adjacent seeds both start at decorrelated states.
func (r *rng) reseed(seed int64, trial uint64) {
	r.state = mix64(mix64(uint64(seed)) + golden*trial)
}

func (r *rng) next() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (r *rng) Float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n) via the multiply-shift range
// reduction (bias < n/2^64, immaterial at Monte Carlo scale).
func (r *rng) Intn(n int) int {
	hi, _ := bits.Mul64(r.next(), uint64(n))
	return int(hi)
}

// NormFloat64 returns a standard normal draw (Box–Muller, one branch).
// 1-Float64() lies in (0, 1], so the log never sees zero.
func (r *rng) NormFloat64() float64 {
	u := 1 - r.Float64()
	v := r.Float64()
	return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
}
