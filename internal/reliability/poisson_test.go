package reliability

import (
	"math"
	"testing"
)

// TestPoissonMoments pins the sampler's mean and variance at small,
// moderate, large (exact chunked path — where the old Knuth sampler's
// exp(-λ) underflowed and the k > 1000 backstop returned garbage) and
// huge (normal-approximation path) λ. The RNG is deterministic, so the
// tolerances are safe margins around a fixed outcome.
func TestPoissonMoments(t *testing.T) {
	cases := []struct {
		lambda float64
		n      int
	}{
		{0.1, 200_000},
		{10, 100_000},
		{1000, 20_000},  // > 745: impossible for the pre-fix sampler
		{20000, 50_000}, // normal-approximation branch
	}
	for _, c := range cases {
		r := newTestRand()
		var sum, sumSq float64
		for i := 0; i < c.n; i++ {
			k := float64(poisson(r, c.lambda))
			sum += k
			sumSq += k * k
		}
		mean := sum / float64(c.n)
		variance := sumSq/float64(c.n) - mean*mean
		// Poisson: mean = variance = λ. Allow 5 standard errors on the
		// mean and a 10% band on the variance.
		seMean := math.Sqrt(c.lambda / float64(c.n))
		if math.Abs(mean-c.lambda) > 5*seMean {
			t.Errorf("λ=%g: mean %.4f, want %.4f ± %.4f", c.lambda, mean, c.lambda, 5*seMean)
		}
		if math.Abs(variance-c.lambda) > 0.10*c.lambda {
			t.Errorf("λ=%g: variance %.4f, want %.4f ± 10%%", c.lambda, variance, c.lambda)
		}
	}
}

// TestPoissonEdgeCases: λ ≤ 0 yields zero, and the sampler is safe at
// the chunk boundary.
func TestPoissonEdgeCases(t *testing.T) {
	r := newTestRand()
	if k := poisson(r, 0); k != 0 {
		t.Fatalf("poisson(0) = %d", k)
	}
	if k := poisson(r, -1); k != 0 {
		t.Fatalf("poisson(-1) = %d", k)
	}
	// Exactly at the chunk size: single inversion, must not hang or
	// return the old cap value.
	sum := 0
	const n = 2_000
	for i := 0; i < n; i++ {
		sum += poisson(r, poissonChunk)
	}
	mean := float64(sum) / n
	if math.Abs(mean-poissonChunk)/poissonChunk > 0.05 {
		t.Fatalf("poisson(%d) mean %.1f", poissonChunk, mean)
	}
}

// TestPoissonLargeLambdaReachable reproduces the configuration that
// triggered the original bug: enough ranks and years that the system
// arrival rate λ crosses exp-underflow territory, where the old
// sampler silently returned its iteration cap. The engine must still
// produce a sane MeanFaults (≈ λ-scaled, not capped).
func TestPoissonLargeLambdaReachable(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trials = 200
	// 7e5 chip-lifetimes of rate: λ_sys ≈ 0.00406 * 9 * ranks * years/7.
	// Push it over 745 with a deliberately extreme sweep point.
	cfg.Ranks = 4096
	cfg.LifetimeHours *= 8
	res, err := Simulate(NoECC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := buildModel(cfg)
	if m.sysLambda < 745 {
		t.Fatalf("test config λ=%.0f does not reach underflow territory", m.sysLambda)
	}
	// MeanFaults ≥ sampled arrivals ≈ λ; the old sampler capped trials
	// at ~1000 arrivals regardless of λ.
	if res.MeanFaults < 0.9*m.sysLambda {
		t.Fatalf("MeanFaults %.0f far below λ %.0f — sampler breakdown", res.MeanFaults, m.sysLambda)
	}
}

// TestRNGStreamsDecorrelated: per-trial streams from adjacent trial
// indices must not produce correlated uniforms.
func TestRNGStreamsDecorrelated(t *testing.T) {
	var a, b rng
	const n = 10_000
	var dot, sa, sb float64
	for trial := uint64(0); trial < n; trial++ {
		a.reseed(1, trial)
		b.reseed(1, trial+1)
		x, y := a.Float64()-0.5, b.Float64()-0.5
		dot += x * y
		sa += x * x
		sb += y * y
	}
	corr := dot / math.Sqrt(sa*sb)
	if math.Abs(corr) > 0.05 {
		t.Fatalf("adjacent trial streams correlate: r = %.3f", corr)
	}
}
