package reliability

import "math"

// Poisson sampling valid for every λ ≥ 0.
//
// Knuth inversion compares a product of uniforms against exp(-λ),
// which underflows to zero once λ ≳ 745. The previous sampler then
// could exit its loop only through an arbitrary k > 1000 backstop and
// returned a draw unrelated to λ — silently, and exactly in the
// configurations users scale to (long lifetimes, many ranks). The
// replacement keeps inversion where it is exact and cheap, and covers
// large λ two ways:
//
//   - λ ≤ poissonNormalCutoff: exact chunking via additivity —
//     Poisson(a+b) = Poisson(a) + Poisson(b) for independent draws, so
//     the mass is sampled in inversion-safe chunks of poissonChunk
//     (exp(-500) ≈ 7e-218, far above double underflow).
//   - λ > poissonNormalCutoff: normal approximation with continuity
//     correction. Skewness is 1/sqrt(λ) ≤ 0.01 there, below anything a
//     Monte Carlo at feasible trial counts can resolve, and it keeps
//     the cost O(1) instead of O(λ).
const (
	poissonChunk        = 500
	poissonNormalCutoff = 10_000
)

// poisson draws from Poisson(lambda). There is no iteration cap: the
// inversion loop terminates with probability one, shrinking the product
// by e^-1 per draw on average.
func poisson(r *rng, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > poissonNormalCutoff {
		k := math.Round(lambda + math.Sqrt(lambda)*r.NormFloat64())
		if k < 0 {
			return 0
		}
		return int(k)
	}
	n := 0
	for lambda > poissonChunk {
		n += poissonInv(r, poissonChunk)
		lambda -= poissonChunk
	}
	return n + poissonInv(r, lambda)
}

// poissonInv is Knuth inversion, exact for lambda ≤ poissonChunk.
func poissonInv(r *rng, lambda float64) int {
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
