package cpu

import "testing"

// Unit tests for the ROB lookback window — the O(1) core-model machinery
// that bounds how far ahead of retirement a load may issue.

func TestRetireAtBeforeAnyRecord(t *testing.T) {
	c := &core{}
	// With no records, instructions retire at full width from t=0.
	if got := c.retireAt(400, 4); got != 100 {
		t.Fatalf("retireAt(400) = %d, want 100", got)
	}
}

func TestRetireAtUsesNewestRecordAtOrBefore(t *testing.T) {
	c := &core{}
	c.push(record{inst: 100, retire: 1000}, 192)
	c.push(record{inst: 200, retire: 5000}, 192)
	// j between the records: bound by the first record plus width-rate.
	if got := c.retireAt(180, 4); got != 1000+(180-100)/4 {
		t.Fatalf("retireAt(180) = %d", got)
	}
	// j after the newest record: bound by it.
	if got := c.retireAt(240, 4); got != 5000+10 {
		t.Fatalf("retireAt(240) = %d", got)
	}
	// j before all records: width-rate from zero.
	if got := c.retireAt(40, 4); got != 10 {
		t.Fatalf("retireAt(40) = %d", got)
	}
}

func TestRetireAtMonotone(t *testing.T) {
	c := &core{}
	c.push(record{inst: 50, retire: 400}, 192)
	c.push(record{inst: 90, retire: 900}, 192)
	c.push(record{inst: 130, retire: 910}, 192)
	prev := uint64(0)
	for j := uint64(0); j < 200; j += 7 {
		got := c.retireAt(j, 4)
		if got < prev {
			t.Fatalf("retireAt(%d) = %d < previous %d", j, got, prev)
		}
		prev = got
	}
}

func TestPushPrunesStaleRecords(t *testing.T) {
	c := &core{}
	const rob = 100
	for i := uint64(1); i <= 300; i++ {
		c.push(record{inst: i * 10, retire: i * 40}, rob)
	}
	// All retained records except possibly the head's predecessor must
	// be within rob of the newest instruction.
	newest := c.window[len(c.window)-1].inst
	live := c.window[c.head:]
	for i := 1; i < len(live); i++ {
		if live[i].inst+rob*4 < newest {
			t.Fatalf("record %d (inst %d) far beyond the ROB window of %d", i, live[i].inst, newest)
		}
	}
	// The buffer is compacted, not growing without bound.
	if len(c.window)-c.head > 300 {
		t.Fatal("window not pruned")
	}
}

func TestPushCompactsBuffer(t *testing.T) {
	c := &core{}
	for i := uint64(1); i <= 10_000; i++ {
		c.push(record{inst: i * 100, retire: i * 400}, 192)
	}
	if c.head > 64 {
		t.Fatalf("head = %d — compaction never ran", c.head)
	}
	if len(c.window) > 200 {
		t.Fatalf("window length %d — leaking records", len(c.window))
	}
}
