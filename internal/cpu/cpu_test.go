package cpu

import (
	"testing"

	"synergy/internal/dram"
	"synergy/internal/secmem"
	"synergy/internal/trace"
)

func runWorkload(t testing.TB, name string, design secmem.Design, instr uint64, channels int) Result {
	t.Helper()
	var w trace.Workload
	found := false
	for _, cand := range trace.Workloads() {
		if cand.Name == name {
			w, found = cand, true
			break
		}
	}
	if !found {
		t.Fatalf("workload %q not in roster", name)
	}
	hier, err := secmem.New(secmem.DefaultConfig(design))
	if err != nil {
		t.Fatal(err)
	}
	dcfg := dram.DefaultConfig()
	dcfg.Channels = channels
	mem, err := dram.New(dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.InstrPerCore = instr
	res, err := Run(cfg, w, hier, mem)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidatesConfig(t *testing.T) {
	hier, _ := secmem.New(secmem.DefaultConfig(secmem.NonSecure))
	mem, _ := dram.New(dram.DefaultConfig())
	bad := DefaultConfig()
	bad.Cores = 0
	if _, err := Run(bad, trace.Workloads()[0], hier, mem); err == nil {
		t.Fatal("accepted zero cores")
	}
}

func TestRunProducesActivity(t *testing.T) {
	res := runWorkload(t, "mcf", secmem.SGXO, 200_000, 2)
	if res.Cycles == 0 || res.IPC <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Traffic.Total() == 0 {
		t.Fatal("no DRAM traffic for a memory-intensive workload")
	}
	if res.IPC > float64(DefaultConfig().Width*DefaultConfig().Cores) {
		t.Fatalf("IPC %.2f exceeds machine width", res.IPC)
	}
	if res.MemReads == 0 {
		t.Fatal("DRAM saw no reads")
	}
}

func TestRunDeterministic(t *testing.T) {
	a := runWorkload(t, "lbm", secmem.Synergy, 100_000, 2)
	b := runWorkload(t, "lbm", secmem.Synergy, 100_000, 2)
	if a.Cycles != b.Cycles || a.Traffic != b.Traffic {
		t.Fatalf("non-deterministic run: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// The headline result's direction: for a memory-intensive workload,
// NonSecure > Synergy > SGX_O > SGX in performance.
func TestDesignPerformanceOrdering(t *testing.T) {
	const instr = 400_000
	ipc := map[secmem.Design]float64{}
	for _, d := range []secmem.Design{secmem.NonSecure, secmem.SGX, secmem.SGXO, secmem.Synergy} {
		ipc[d] = runWorkload(t, "mcf", d, instr, 2).IPC
	}
	if !(ipc[secmem.NonSecure] > ipc[secmem.Synergy]) {
		t.Errorf("NonSecure %.3f not above Synergy %.3f", ipc[secmem.NonSecure], ipc[secmem.Synergy])
	}
	if !(ipc[secmem.Synergy] > ipc[secmem.SGXO]) {
		t.Errorf("Synergy %.3f not above SGX_O %.3f", ipc[secmem.Synergy], ipc[secmem.SGXO])
	}
	if !(ipc[secmem.SGXO] > ipc[secmem.SGX]) {
		t.Errorf("SGX_O %.3f not above SGX %.3f", ipc[secmem.SGXO], ipc[secmem.SGX])
	}
}

// More channels relieve the bandwidth bottleneck (Fig. 12 direction).
func TestMoreChannelsHelp(t *testing.T) {
	two := runWorkload(t, "lbm", secmem.SGXO, 300_000, 2)
	eight := runWorkload(t, "lbm", secmem.SGXO, 300_000, 8)
	if eight.IPC <= two.IPC {
		t.Fatalf("8-channel IPC %.3f not above 2-channel %.3f", eight.IPC, two.IPC)
	}
}

// Chipkill's lockstep dual-channel operation must cost performance
// versus plain SGX_O on the same channel count (Fig. 1b rationale).
func TestLockstepCostsPerformance(t *testing.T) {
	plain := runWorkload(t, "lbm", secmem.SGXO, 300_000, 2)

	var w trace.Workload
	for _, cand := range trace.Workloads() {
		if cand.Name == "lbm" {
			w = cand
		}
	}
	hier, _ := secmem.New(secmem.DefaultConfig(secmem.SGXO))
	dcfg := dram.DefaultConfig()
	dcfg.Lockstep = true
	mem, _ := dram.New(dcfg)
	cfg := DefaultConfig()
	cfg.InstrPerCore = 300_000
	lock, err := Run(cfg, w, hier, mem)
	if err != nil {
		t.Fatal(err)
	}
	if lock.IPC >= plain.IPC {
		t.Fatalf("lockstep IPC %.3f not below plain %.3f", lock.IPC, plain.IPC)
	}
}

func TestAPKIReflectsWorkloadIntensity(t *testing.T) {
	heavy := runWorkload(t, "mcf", secmem.NonSecure, 300_000, 2)
	light := runWorkload(t, "gobmk", secmem.NonSecure, 300_000, 2)
	if heavy.APKI() <= light.APKI() {
		t.Fatalf("mcf APKI %.1f not above gobmk %.1f", heavy.APKI(), light.APKI())
	}
}

// A tiny-footprint workload should mostly hit in the LLC and show high
// IPC regardless of design (the paper's non-memory-intensive argument).
func TestCacheResidentWorkloadInsensitive(t *testing.T) {
	p := trace.Profile{Name: "tiny", Suite: "SPECint", APKI: 20, WriteFrac: 0.2,
		FootprintLines: 512, StreamFrac: 0.5}
	w := trace.Workload{Name: "tiny", Suite: "SPECint", Parts: []trace.Profile{p}, RateRun: true}
	run := func(d secmem.Design) float64 {
		hier, _ := secmem.New(secmem.DefaultConfig(d))
		mem, _ := dram.New(dram.DefaultConfig())
		cfg := DefaultConfig()
		cfg.InstrPerCore = 3_000_000
		res, err := Run(cfg, w, hier, mem)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	sgxo := run(secmem.SGXO)
	syn := run(secmem.Synergy)
	diff := (syn - sgxo) / sgxo
	if diff > 0.05 || diff < -0.05 {
		t.Fatalf("cache-resident workload moved %.1f%% between designs", diff*100)
	}
}

func BenchmarkRunMcfSGXO(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runWorkload(b, "mcf", secmem.SGXO, 200_000, 2)
	}
}

// RunSources with recorded traces must behave like the live stream it
// was recorded from: a replayed workload still shows the design
// ordering.
func TestRunSourcesWithReplay(t *testing.T) {
	p, err := trace.ByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	// Record one slice per core, as the paper's Pin-points do.
	sources := make([]trace.Source, 4)
	for c := 0; c < 4; c++ {
		src := trace.NewStream(p, uint64(c)<<36, int64(c)*7919)
		accs := make([]trace.Access, 30_000)
		for i := range accs {
			accs[i] = src.Next()
		}
		rp, err := trace.NewReplay("mcf", accs)
		if err != nil {
			t.Fatal(err)
		}
		sources[c] = rp
	}
	run := func(d secmem.Design) float64 {
		hier, _ := secmem.New(secmem.DefaultConfig(d))
		mem, _ := dram.New(dram.DefaultConfig())
		cfg := DefaultConfig()
		cfg.InstrPerCore = 300_000
		// Fresh replays per run for determinism.
		srcs := make([]trace.Source, 4)
		for c := 0; c < 4; c++ {
			srcs[c], _ = trace.NewReplay("mcf", sources[c].(*trace.Replay).Accesses())
		}
		res, err := RunSources(cfg, "mcf-replay", srcs, hier, mem)
		if err != nil {
			t.Fatal(err)
		}
		if res.Workload != "mcf-replay" {
			t.Fatalf("label = %q", res.Workload)
		}
		return res.IPC
	}
	if syn, sgxo := run(secmem.Synergy), run(secmem.SGXO); syn <= sgxo {
		t.Fatalf("replayed Synergy %.3f not above SGX_O %.3f", syn, sgxo)
	}
}

func TestRunSourcesValidatesCount(t *testing.T) {
	hier, _ := secmem.New(secmem.DefaultConfig(secmem.NonSecure))
	mem, _ := dram.New(dram.DefaultConfig())
	if _, err := RunSources(DefaultConfig(), "x", nil, hier, mem); err == nil {
		t.Fatal("accepted nil sources")
	}
}
