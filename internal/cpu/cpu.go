// Package cpu is the processor side of the performance simulator: a
// USIMM-style trace-driven multicore (Table III: 4 cores, 3.2 GHz,
// 192-entry ROB, 4-wide fetch/retire) over the shared LLC, a secure-
// memory traffic engine, and the DRAM timing model.
//
// The core model retires non-memory instructions at full width and
// tracks memory-level parallelism through the reorder buffer: a load
// may issue as soon as it enters the ROB (bounded by the retirement of
// the instruction ROB-size older), loads dependent on a prior load wait
// for its data, and the oldest instruction blocks retirement until its
// data returns. This reproduces the queueing behaviour that the paper's
// bandwidth-bloat arguments rest on, at a cost of O(1) work per memory
// access, which is what makes the full 29-workload × design × channel
// sweeps tractable.
package cpu

import (
	"errors"

	"synergy/internal/secmem"
	"synergy/internal/trace"
)

// Memory is the DRAM backend contract: the streamlined model
// (dram.System) and the detailed controller (memctrl.Controller) both
// satisfy it, so experiments can swap timing models.
type Memory interface {
	// Read issues a read at time now and returns the data-arrival cycle.
	Read(now uint64, line uint64) uint64
	// Write posts a write at time now.
	Write(now uint64, line uint64)
	// AvgReadLatency is the mean read latency in CPU cycles so far.
	AvgReadLatency() float64
	// RowHitRate is the open-row hit fraction so far.
	RowHitRate() float64
	// Counts reports total reads and writes served.
	Counts() (reads, writes uint64)
}

// Config parameterizes a simulation run.
type Config struct {
	Cores        int
	ROB          int
	Width        int
	LLCHitLat    uint64
	InstrPerCore uint64
}

// DefaultConfig is the Table III processor: 4 cores, 192-entry ROB,
// 4-wide, with a 30-cycle LLC hit.
func DefaultConfig() Config {
	return Config{Cores: 4, ROB: 192, Width: 4, LLCHitLat: 30, InstrPerCore: 2_000_000}
}

// Result summarizes one run.
type Result struct {
	Workload     string
	Design       string
	Cycles       uint64
	Instructions uint64
	IPC          float64
	Traffic      secmem.Traffic
	MemReads     uint64
	MemWrites    uint64
	AvgReadLat   float64
	RowHitRate   float64
	LLCMisses    uint64
	LLCHits      uint64
}

// APKI returns memory accesses (DRAM transactions) per kilo-instruction.
func (r Result) APKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Traffic.Total()) / float64(r.Instructions) * 1000
}

// record is a retired memory instruction: (instruction index, retire time).
type record struct {
	inst   uint64
	retire uint64
}

// core is the per-core simulation state.
type core struct {
	stream trace.Source

	inst     uint64 // instruction index of the last processed access
	rem      uint64 // sub-width instruction remainder
	retire   uint64 // retire time of instruction `inst`
	lastIss  uint64 // last request issue time (in-order issue)
	lastCmp  uint64 // last load completion (for dependent loads)
	finished bool

	window []record // recent access retirements for ROB lookback
	head   int
}

// retireAt estimates when instruction j retired, from the newest window
// record at or before j (instructions between records retire at full
// width).
func (c *core) retireAt(j uint64, width uint64) uint64 {
	best := uint64(0)
	bestInst := uint64(0)
	found := false
	for i := c.head; i < len(c.window); i++ {
		r := c.window[i]
		if r.inst <= j {
			best, bestInst, found = r.retire, r.inst, true
		} else {
			break
		}
	}
	if !found {
		return j / width
	}
	return best + (j-bestInst)/width
}

func (c *core) push(r record, robLimit uint64) {
	c.window = append(c.window, r)
	// Drop records that can no longer bound any future ROB lookback:
	// keep at least one record at or before inst-robLimit.
	for c.head+1 < len(c.window) && c.window[c.head+1].inst+robLimit <= r.inst {
		c.head++
	}
	if c.head > 64 {
		c.window = append([]record(nil), c.window[c.head:]...)
		c.head = 0
	}
}

// Run simulates workload w under the given hierarchy and DRAM system,
// returning aggregate performance. The hierarchy and DRAM must be fresh
// (their statistics are read as totals).
func Run(cfg Config, w trace.Workload, hier *secmem.Hierarchy, mem Memory) (Result, error) {
	streams := w.Streams(cfg.Cores)
	sources := make([]trace.Source, len(streams))
	for i, s := range streams {
		sources[i] = s
	}
	return RunSources(cfg, w.Name, sources, hier, mem)
}

// RunSources simulates an arbitrary set of per-core access sources —
// synthetic streams or recorded traces (trace.Replay) — under the given
// hierarchy and DRAM system. len(sources) must equal cfg.Cores.
func RunSources(cfg Config, label string, sources []trace.Source, hier *secmem.Hierarchy, mem Memory) (Result, error) {
	if cfg.Cores <= 0 || cfg.ROB <= 0 || cfg.Width <= 0 || cfg.InstrPerCore == 0 {
		return Result{}, errors.New("cpu: all Config fields must be positive")
	}
	if len(sources) != cfg.Cores {
		return Result{}, errors.New("cpu: need exactly one source per core")
	}
	cores := make([]*core, cfg.Cores)
	for i := range cores {
		cores[i] = &core{stream: sources[i]}
	}
	width := uint64(cfg.Width)
	rob := uint64(cfg.ROB)

	active := cfg.Cores
	var makespan uint64
	for active > 0 {
		// Advance the core whose local time is furthest behind, so the
		// shared DRAM sees a roughly time-ordered request stream.
		var c *core
		for _, cand := range cores {
			if cand.finished {
				continue
			}
			if c == nil || cand.retire < c.retire {
				c = cand
			}
		}

		a := c.stream.Next()
		inst := c.inst + a.Gap
		if inst >= cfg.InstrPerCore {
			// Core done: account the tail of non-memory instructions.
			tail := cfg.InstrPerCore - c.inst
			fin := c.retire + (tail+c.rem)/width
			if fin > makespan {
				makespan = fin
			}
			c.finished = true
			active--
			continue
		}

		// Retire time of the instruction just before this access,
		// assuming it is not itself delayed.
		pre := c.retire + (a.Gap+c.rem)/width
		c.rem = (a.Gap + c.rem) % width

		// Issue when the access enters the ROB (in order).
		issue := c.lastIss
		if inst >= rob {
			if t := c.retireAt(inst-rob, width); t > issue {
				issue = t
			}
		}
		if a.Dependent && c.lastCmp > issue {
			issue = c.lastCmp
		}
		if pre > issue+rob/width {
			// The frontend cannot be further ahead than the ROB allows;
			// in practice `pre` tracks retirement so this binds rarely.
			issue = pre - rob/width
		}

		complete := issue
		if a.Write {
			// Stores retire with the frontier; the fetched line and
			// write traffic only consume bandwidth.
			if hit, txs := hier.Write(a.Addr); !hit {
				issueTxs(mem, issue, txs)
			}
		} else {
			hit, txs := hier.Read(a.Addr)
			if hit {
				complete = issue + cfg.LLCHitLat
			} else {
				complete = issueTxs(mem, issue, txs)
			}
			c.lastCmp = complete
		}

		ret := pre
		if !a.Write && complete > ret {
			ret = complete
		}
		c.inst = inst
		c.retire = ret
		c.lastIss = issue
		c.push(record{inst: inst, retire: ret}, rob)
	}

	llc := hier.LLC()
	memReads, memWrites := mem.Counts()
	res := Result{
		Workload:     label,
		Design:       hier.Design().String(),
		Cycles:       makespan,
		Instructions: uint64(cfg.Cores) * cfg.InstrPerCore,
		Traffic:      hier.Traffic(),
		MemReads:     memReads,
		MemWrites:    memWrites,
		AvgReadLat:   mem.AvgReadLatency(),
		RowHitRate:   mem.RowHitRate(),
		LLCMisses:    llc.Misses(),
		LLCHits:      llc.Hits(),
	}
	if makespan > 0 {
		res.IPC = float64(res.Instructions) / float64(makespan)
	}
	return res, nil
}

// issueTxs sends an access expansion to DRAM and returns when the
// critical reads (data + decryption metadata) have all arrived.
func issueTxs(mem Memory, issue uint64, txs []secmem.Tx) uint64 {
	complete := issue
	for _, tx := range txs {
		if tx.Write {
			mem.Write(issue, tx.Addr)
			continue
		}
		t := mem.Read(issue, tx.Addr)
		if tx.Critical && t > complete {
			complete = t
		}
	}
	return complete
}
