// Package ctrenc implements counter-mode memory encryption as used by
// SGX-class secure memories and by the SYNERGY paper (§II-A2, Fig. 2).
//
// Each 64-byte cacheline is encrypted by XOR with a One Time Pad (OTP)
// generated from AES of (line address, per-line write counter):
//
//	OTP   = AES_K(addr || ctr || 0) || ... || AES_K(addr || ctr || 3)
//	cipher = plain XOR OTP
//
// Incrementing the counter on every write gives temporal uniqueness of
// the pad; binding the address gives spatial uniqueness. Decryption is
// the same XOR. Because the pad depends only on (addr, ctr), it can be
// precomputed while the data access is in flight — the property that
// makes counter caching performance-critical in the paper's evaluation.
package ctrenc

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
)

// LineSize is the cacheline granularity of memory encryption in bytes.
const LineSize = 64

// KeySize is the encryption key size in bytes (AES-128).
const KeySize = 16

// CounterBits is the width of the per-line encryption counter, matching
// SGX's 56-bit monolithic counters (paper Table II).
const CounterBits = 56

// CounterMax is the largest representable per-line counter value. A
// counter overflow in a real system forces re-encryption of the region
// under a fresh key; Engine reports it as an error.
const CounterMax = 1<<CounterBits - 1

// ErrCounterOverflow is returned when a per-line counter would exceed
// CounterBits bits.
var ErrCounterOverflow = errors.New("ctrenc: encryption counter overflow (region must be re-keyed)")

// Engine encrypts and decrypts cachelines in counter mode. It is safe
// for concurrent use: all state is read-only after construction.
type Engine struct {
	block cipher.Block
}

// New creates an Engine from a 16-byte secret key.
func New(key []byte) (*Engine, error) {
	if len(key) != KeySize {
		return nil, errors.New("ctrenc: key must be 16 bytes")
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Engine{block: b}, nil
}

// Pad writes the 64-byte one-time pad for (addr, counter) into dst.
// dst must be LineSize bytes.
func (e *Engine) Pad(dst []byte, addr, counter uint64) {
	if len(dst) != LineSize {
		panic("ctrenc: pad buffer must be 64 bytes")
	}
	var in [16]byte
	binary.BigEndian.PutUint64(in[:8], addr)
	for blk := 0; blk < LineSize/aes.BlockSize; blk++ {
		// counter occupies 56 bits; the block index rides in the top byte.
		binary.BigEndian.PutUint64(in[8:], counter|uint64(blk)<<CounterBits)
		e.block.Encrypt(dst[blk*aes.BlockSize:(blk+1)*aes.BlockSize], in[:])
	}
}

// Encrypt XORs a 64-byte plaintext line with the pad for (addr, counter),
// writing the ciphertext to dst. dst and src may alias.
func (e *Engine) Encrypt(dst, src []byte, addr, counter uint64) error {
	if counter > CounterMax {
		return ErrCounterOverflow
	}
	e.xorPad(dst, src, addr, counter)
	return nil
}

// Decrypt XORs a 64-byte ciphertext line with the pad for (addr, counter),
// writing the plaintext to dst. dst and src may alias. Counter-mode
// decryption is identical to encryption.
func (e *Engine) Decrypt(dst, src []byte, addr, counter uint64) error {
	if counter > CounterMax {
		return ErrCounterOverflow
	}
	e.xorPad(dst, src, addr, counter)
	return nil
}

func (e *Engine) xorPad(dst, src []byte, addr, counter uint64) {
	if len(dst) != LineSize || len(src) != LineSize {
		panic("ctrenc: lines must be 64 bytes")
	}
	var pad [LineSize]byte
	e.Pad(pad[:], addr, counter)
	for i := range pad {
		dst[i] = src[i] ^ pad[i]
	}
}

// NextCounter returns counter+1, or ErrCounterOverflow when the 56-bit
// space is exhausted.
func NextCounter(counter uint64) (uint64, error) {
	if counter >= CounterMax {
		return 0, ErrCounterOverflow
	}
	return counter + 1, nil
}
