// Package ctrenc implements counter-mode memory encryption as used by
// SGX-class secure memories and by the SYNERGY paper (§II-A2, Fig. 2).
//
// Each 64-byte cacheline is encrypted by XOR with a One Time Pad (OTP)
// generated from AES of (line address, per-line write counter):
//
//	OTP   = AES_K(addr || ctr || 0) || ... || AES_K(addr || ctr || 3)
//	cipher = plain XOR OTP
//
// Incrementing the counter on every write gives temporal uniqueness of
// the pad; binding the address gives spatial uniqueness. Decryption is
// the same XOR. Because the pad depends only on (addr, ctr), it can be
// precomputed while the data access is in flight — the property that
// makes counter caching performance-critical in the paper's evaluation,
// and that PadBatch models for the engine's batched read pipeline.
package ctrenc

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// LineSize is the cacheline granularity of memory encryption in bytes.
const LineSize = 64

// KeySize is the encryption key size in bytes (AES-128).
const KeySize = 16

// CounterBits is the width of the per-line encryption counter, matching
// SGX's 56-bit monolithic counters (paper Table II).
const CounterBits = 56

// CounterMax is the largest representable per-line counter value. A
// counter overflow in a real system forces re-encryption of the region
// under a fresh key; Engine reports it as an error.
const CounterMax = 1<<CounterBits - 1

// ErrCounterOverflow is returned when a per-line counter would exceed
// CounterBits bits.
var ErrCounterOverflow = errors.New("ctrenc: encryption counter overflow (region must be re-keyed)")

// ErrBadLength is returned (wrapped, with the offending size) when a
// caller-supplied buffer is not exactly LineSize bytes per line.
var ErrBadLength = errors.New("ctrenc: buffer must be exactly LineSize bytes per line")

// Engine encrypts and decrypts cachelines in counter mode. It is safe
// for concurrent use: all state is read-only after construction.
type Engine struct {
	block cipher.Block
}

// New creates an Engine from a 16-byte secret key.
func New(key []byte) (*Engine, error) {
	if len(key) != KeySize {
		return nil, errors.New("ctrenc: key must be 16 bytes")
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Engine{block: b}, nil
}

// scratch holds the AES input block and one line-sized pad. Both are
// pooled rather than stack-allocated because buffers passed through the
// cipher.Block interface escape, and pad generation runs once per memory
// access on the hot path.
type scratch struct {
	in  [aes.BlockSize]byte
	pad [LineSize]byte
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// Pad writes the 64-byte one-time pad for (addr, counter) into dst.
// dst must be LineSize bytes and counter at most CounterMax; violations
// return ErrBadLength / ErrCounterOverflow (the Encrypt/Decrypt error
// contract).
func (e *Engine) Pad(dst []byte, addr, counter uint64) error {
	if len(dst) != LineSize {
		return fmt.Errorf("ctrenc: pad buffer must be %d bytes, got %d: %w", LineSize, len(dst), ErrBadLength)
	}
	if counter > CounterMax {
		return ErrCounterOverflow
	}
	s := scratchPool.Get().(*scratch)
	e.padInto(&s.in, dst, addr, counter)
	scratchPool.Put(s)
	return nil
}

// PadBatch fills dst with the concatenated one-time pads for every
// (addrs[k], ctrs[k]) pair: dst[k*LineSize:(k+1)*LineSize] receives pad
// k. The whole batch shares one AES-input serialization buffer, so a
// controller can generate all pads for a read burst in a single pass
// before the data arrives.
func (e *Engine) PadBatch(dst []byte, addrs, ctrs []uint64) error {
	if len(addrs) != len(ctrs) {
		return fmt.Errorf("ctrenc: PadBatch needs matching addr/counter slices, got %d/%d", len(addrs), len(ctrs))
	}
	if len(dst) != len(addrs)*LineSize {
		return fmt.Errorf("ctrenc: PadBatch needs %d×%d bytes, got %d: %w", len(addrs), LineSize, len(dst), ErrBadLength)
	}
	for _, c := range ctrs {
		if c > CounterMax {
			return ErrCounterOverflow
		}
	}
	s := scratchPool.Get().(*scratch)
	for k := range addrs {
		e.padInto(&s.in, dst[k*LineSize:(k+1)*LineSize], addrs[k], ctrs[k])
	}
	scratchPool.Put(s)
	return nil
}

// padInto fills dst (LineSize bytes) with the pad for (addr, counter),
// using in as the AES input block. Address and counter are serialized
// once; across the 4 blocks only the counter word's top byte changes
// (counters are 56-bit, so the block index rides there).
func (e *Engine) padInto(in *[aes.BlockSize]byte, dst []byte, addr, counter uint64) {
	binary.BigEndian.PutUint64(in[:8], addr)
	binary.BigEndian.PutUint64(in[8:], counter)
	for blk := 0; blk < LineSize/aes.BlockSize; blk++ {
		in[8] = byte(blk)
		e.block.Encrypt(dst[blk*aes.BlockSize:(blk+1)*aes.BlockSize], in[:])
	}
}

// Encrypt XORs a 64-byte plaintext line with the pad for (addr, counter),
// writing the ciphertext to dst. dst and src may alias.
func (e *Engine) Encrypt(dst, src []byte, addr, counter uint64) error {
	if counter > CounterMax {
		return ErrCounterOverflow
	}
	return e.xorPad(dst, src, addr, counter)
}

// Decrypt XORs a 64-byte ciphertext line with the pad for (addr, counter),
// writing the plaintext to dst. dst and src may alias. Counter-mode
// decryption is identical to encryption.
func (e *Engine) Decrypt(dst, src []byte, addr, counter uint64) error {
	if counter > CounterMax {
		return ErrCounterOverflow
	}
	return e.xorPad(dst, src, addr, counter)
}

// EncryptBatch encrypts lines[k] = src[k*LineSize:(k+1)*LineSize] under
// (addrs[k], ctrs[k]) into the same span of dst. dst and src may alias.
// Pad generation for the whole batch reuses one scratch, so the batch
// costs no allocations beyond the caller's buffers.
func (e *Engine) EncryptBatch(dst, src []byte, addrs, ctrs []uint64) error {
	if len(addrs) != len(ctrs) {
		return fmt.Errorf("ctrenc: EncryptBatch needs matching addr/counter slices, got %d/%d", len(addrs), len(ctrs))
	}
	if len(dst) != len(addrs)*LineSize || len(src) != len(addrs)*LineSize {
		return fmt.Errorf("ctrenc: EncryptBatch needs %d×%d bytes, got %d/%d: %w",
			len(addrs), LineSize, len(dst), len(src), ErrBadLength)
	}
	for _, c := range ctrs {
		if c > CounterMax {
			return ErrCounterOverflow
		}
	}
	s := scratchPool.Get().(*scratch)
	for k := range addrs {
		e.padInto(&s.in, s.pad[:], addrs[k], ctrs[k])
		subtle.XORBytes(dst[k*LineSize:(k+1)*LineSize], src[k*LineSize:(k+1)*LineSize], s.pad[:])
	}
	scratchPool.Put(s)
	return nil
}

// DecryptBatch is EncryptBatch for ciphertext: counter-mode decryption
// is the same XOR.
func (e *Engine) DecryptBatch(dst, src []byte, addrs, ctrs []uint64) error {
	return e.EncryptBatch(dst, src, addrs, ctrs)
}

// XORPad applies a precomputed one-time pad to one line: dst = src XOR
// pad. It is the commit half of the precompute-then-commit pipeline
// (Pad/PadBatch generate pads for predicted (addr, counter) pairs while
// the data access is in flight; XORPad spends one if the prediction
// held). dst and src may alias. Counter-mode makes the same call serve
// both directions.
func XORPad(dst, src, pad []byte) error {
	if len(dst) != LineSize || len(src) != LineSize || len(pad) != LineSize {
		return fmt.Errorf("ctrenc: XORPad lines must be %d bytes, got %d/%d/%d: %w",
			LineSize, len(dst), len(src), len(pad), ErrBadLength)
	}
	subtle.XORBytes(dst, src, pad)
	return nil
}

func (e *Engine) xorPad(dst, src []byte, addr, counter uint64) error {
	if len(dst) != LineSize || len(src) != LineSize {
		return fmt.Errorf("ctrenc: lines must be %d bytes, got %d/%d: %w", LineSize, len(dst), len(src), ErrBadLength)
	}
	s := scratchPool.Get().(*scratch)
	e.padInto(&s.in, s.pad[:], addr, counter)
	subtle.XORBytes(dst, src, s.pad[:])
	scratchPool.Put(s)
	return nil
}

// NextCounter returns counter+1, or ErrCounterOverflow when the 56-bit
// space is exhausted.
func NextCounter(counter uint64) (uint64, error) {
	if counter >= CounterMax {
		return 0, ErrCounterOverflow
	}
	return counter + 1, nil
}
