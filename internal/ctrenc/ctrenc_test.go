package ctrenc

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func testEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := New(bytes.Repeat([]byte{0x17}, KeySize))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestNewRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 24} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New accepted %d-byte key", n)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine(t)
	f := func(seed int64, addr uint64, ctr uint64) bool {
		ctr &= CounterMax
		rng := rand.New(rand.NewSource(seed))
		plain := make([]byte, LineSize)
		rng.Read(plain)
		ct := make([]byte, LineSize)
		if err := e.Encrypt(ct, plain, addr, ctr); err != nil {
			return false
		}
		pt := make([]byte, LineSize)
		if err := e.Decrypt(pt, ct, addr, ctr); err != nil {
			return false
		}
		return bytes.Equal(pt, plain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptInPlace(t *testing.T) {
	e := testEngine(t)
	plain := bytes.Repeat([]byte{0xAB}, LineSize)
	line := make([]byte, LineSize)
	copy(line, plain)
	if err := e.Encrypt(line, line, 0x100, 5); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(line, plain) {
		t.Fatal("in-place encryption left plaintext unchanged")
	}
	if err := e.Decrypt(line, line, 0x100, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, plain) {
		t.Fatal("in-place round trip failed")
	}
}

func TestCiphertextVariesWithCounter(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineSize)
	c1 := make([]byte, LineSize)
	c2 := make([]byte, LineSize)
	e.Encrypt(c1, plain, 0x40, 1)
	e.Encrypt(c2, plain, 0x40, 2)
	if bytes.Equal(c1, c2) {
		t.Fatal("same ciphertext for different counters (temporal pad reuse)")
	}
}

func TestCiphertextVariesWithAddress(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineSize)
	c1 := make([]byte, LineSize)
	c2 := make([]byte, LineSize)
	e.Encrypt(c1, plain, 0x40, 1)
	e.Encrypt(c2, plain, 0x80, 1)
	if bytes.Equal(c1, c2) {
		t.Fatal("same ciphertext for different addresses (spatial pad reuse)")
	}
}

func TestPadBlocksDistinct(t *testing.T) {
	e := testEngine(t)
	pad := make([]byte, LineSize)
	e.Pad(pad, 0, 0)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 4; j++ {
			if bytes.Equal(pad[i*16:(i+1)*16], pad[j*16:(j+1)*16]) {
				t.Fatalf("pad blocks %d and %d identical", i, j)
			}
		}
	}
}

func TestCounterOverflow(t *testing.T) {
	e := testEngine(t)
	line := make([]byte, LineSize)
	if err := e.Encrypt(line, line, 0, CounterMax+1); err != ErrCounterOverflow {
		t.Fatalf("Encrypt past CounterMax: err = %v, want ErrCounterOverflow", err)
	}
	if err := e.Encrypt(line, line, 0, CounterMax); err != nil {
		t.Fatalf("Encrypt at CounterMax: %v", err)
	}
}

func TestNextCounter(t *testing.T) {
	if c, err := NextCounter(0); err != nil || c != 1 {
		t.Fatalf("NextCounter(0) = %d, %v", c, err)
	}
	if c, err := NextCounter(CounterMax - 1); err != nil || c != CounterMax {
		t.Fatalf("NextCounter(max-1) = %d, %v", c, err)
	}
	if _, err := NextCounter(CounterMax); err != ErrCounterOverflow {
		t.Fatalf("NextCounter(max): err = %v, want ErrCounterOverflow", err)
	}
}

func TestDecryptWithWrongCounterGarbles(t *testing.T) {
	e := testEngine(t)
	plain := []byte("replayed tuple must not decrypt to the fresh plaintext!!!!!!!!!!")[:LineSize]
	ct := make([]byte, LineSize)
	e.Encrypt(ct, plain, 0x200, 9)
	pt := make([]byte, LineSize)
	e.Decrypt(pt, ct, 0x200, 8) // stale counter, as in a replay attack
	if bytes.Equal(pt, plain) {
		t.Fatal("decryption with stale counter yielded original plaintext")
	}
}

func TestPanicsOnShortLine(t *testing.T) {
	e := testEngine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short line")
		}
	}()
	_ = e.Encrypt(make([]byte, 32), make([]byte, 32), 0, 0)
}

func BenchmarkEncryptLine(b *testing.B) {
	e := testEngine(b)
	line := make([]byte, LineSize)
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		_ = e.Encrypt(line, line, uint64(i)<<6, uint64(i)&CounterMax)
	}
}
