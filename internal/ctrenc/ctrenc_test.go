package ctrenc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func testEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := New(bytes.Repeat([]byte{0x17}, KeySize))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e
}

func TestNewRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 24} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New accepted %d-byte key", n)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine(t)
	f := func(seed int64, addr uint64, ctr uint64) bool {
		ctr &= CounterMax
		rng := rand.New(rand.NewSource(seed))
		plain := make([]byte, LineSize)
		rng.Read(plain)
		ct := make([]byte, LineSize)
		if err := e.Encrypt(ct, plain, addr, ctr); err != nil {
			return false
		}
		pt := make([]byte, LineSize)
		if err := e.Decrypt(pt, ct, addr, ctr); err != nil {
			return false
		}
		return bytes.Equal(pt, plain)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptInPlace(t *testing.T) {
	e := testEngine(t)
	plain := bytes.Repeat([]byte{0xAB}, LineSize)
	line := make([]byte, LineSize)
	copy(line, plain)
	if err := e.Encrypt(line, line, 0x100, 5); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(line, plain) {
		t.Fatal("in-place encryption left plaintext unchanged")
	}
	if err := e.Decrypt(line, line, 0x100, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, plain) {
		t.Fatal("in-place round trip failed")
	}
}

func TestCiphertextVariesWithCounter(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineSize)
	c1 := make([]byte, LineSize)
	c2 := make([]byte, LineSize)
	e.Encrypt(c1, plain, 0x40, 1)
	e.Encrypt(c2, plain, 0x40, 2)
	if bytes.Equal(c1, c2) {
		t.Fatal("same ciphertext for different counters (temporal pad reuse)")
	}
}

func TestCiphertextVariesWithAddress(t *testing.T) {
	e := testEngine(t)
	plain := make([]byte, LineSize)
	c1 := make([]byte, LineSize)
	c2 := make([]byte, LineSize)
	e.Encrypt(c1, plain, 0x40, 1)
	e.Encrypt(c2, plain, 0x80, 1)
	if bytes.Equal(c1, c2) {
		t.Fatal("same ciphertext for different addresses (spatial pad reuse)")
	}
}

func TestPadBlocksDistinct(t *testing.T) {
	e := testEngine(t)
	pad := make([]byte, LineSize)
	if err := e.Pad(pad, 0, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 4; j++ {
			if bytes.Equal(pad[i*16:(i+1)*16], pad[j*16:(j+1)*16]) {
				t.Fatalf("pad blocks %d and %d identical", i, j)
			}
		}
	}
}

func TestCounterOverflow(t *testing.T) {
	e := testEngine(t)
	line := make([]byte, LineSize)
	if err := e.Encrypt(line, line, 0, CounterMax+1); err != ErrCounterOverflow {
		t.Fatalf("Encrypt past CounterMax: err = %v, want ErrCounterOverflow", err)
	}
	if err := e.Encrypt(line, line, 0, CounterMax); err != nil {
		t.Fatalf("Encrypt at CounterMax: %v", err)
	}
}

func TestNextCounter(t *testing.T) {
	if c, err := NextCounter(0); err != nil || c != 1 {
		t.Fatalf("NextCounter(0) = %d, %v", c, err)
	}
	if c, err := NextCounter(CounterMax - 1); err != nil || c != CounterMax {
		t.Fatalf("NextCounter(max-1) = %d, %v", c, err)
	}
	if _, err := NextCounter(CounterMax); err != ErrCounterOverflow {
		t.Fatalf("NextCounter(max): err = %v, want ErrCounterOverflow", err)
	}
}

func TestDecryptWithWrongCounterGarbles(t *testing.T) {
	e := testEngine(t)
	plain := []byte("replayed tuple must not decrypt to the fresh plaintext!!!!!!!!!!")[:LineSize]
	ct := make([]byte, LineSize)
	e.Encrypt(ct, plain, 0x200, 9)
	pt := make([]byte, LineSize)
	e.Decrypt(pt, ct, 0x200, 8) // stale counter, as in a replay attack
	if bytes.Equal(pt, plain) {
		t.Fatal("decryption with stale counter yielded original plaintext")
	}
}

func TestShortLineError(t *testing.T) {
	e := testEngine(t)
	for _, n := range []int{0, 32, 63, 65, 128} {
		if err := e.Encrypt(make([]byte, n), make([]byte, n), 0, 0); !errors.Is(err, ErrBadLength) {
			t.Errorf("Encrypt with %d-byte line: err = %v, want ErrBadLength", n, err)
		}
		if err := e.Decrypt(make([]byte, n), make([]byte, n), 0, 0); !errors.Is(err, ErrBadLength) {
			t.Errorf("Decrypt with %d-byte line: err = %v, want ErrBadLength", n, err)
		}
	}
	// Mismatched dst/src must also be rejected.
	if err := e.Encrypt(make([]byte, LineSize), make([]byte, 32), 0, 0); !errors.Is(err, ErrBadLength) {
		t.Errorf("Encrypt with short src: err = %v, want ErrBadLength", err)
	}
}

// Pad follows the same error contract as Encrypt/Decrypt: ErrBadLength
// for a wrong-sized buffer (it used to panic), ErrCounterOverflow for an
// unrepresentable counter.
func TestPadErrorContract(t *testing.T) {
	e := testEngine(t)
	for _, n := range []int{0, 16, 63, 65} {
		if err := e.Pad(make([]byte, n), 0, 0); !errors.Is(err, ErrBadLength) {
			t.Errorf("Pad with %d-byte buffer: err = %v, want ErrBadLength", n, err)
		}
	}
	if err := e.Pad(make([]byte, LineSize), 0, CounterMax+1); !errors.Is(err, ErrCounterOverflow) {
		t.Errorf("Pad past CounterMax: err = %v, want ErrCounterOverflow", err)
	}
	if err := e.Pad(make([]byte, LineSize), 0, CounterMax); err != nil {
		t.Errorf("Pad at CounterMax: %v", err)
	}
}

// The pad is what Encrypt XORs in: plain XOR Pad == ciphertext.
func TestPadMatchesEncrypt(t *testing.T) {
	e := testEngine(t)
	rng := rand.New(rand.NewSource(4))
	plain := make([]byte, LineSize)
	rng.Read(plain)
	ct := make([]byte, LineSize)
	if err := e.Encrypt(ct, plain, 0x7c0, 99); err != nil {
		t.Fatal(err)
	}
	pad := make([]byte, LineSize)
	if err := e.Pad(pad, 0x7c0, 99); err != nil {
		t.Fatal(err)
	}
	for i := range pad {
		if plain[i]^pad[i] != ct[i] {
			t.Fatalf("byte %d: pad does not reproduce the cipher stream", i)
		}
	}
}

func TestPadBatchMatchesPad(t *testing.T) {
	e := testEngine(t)
	const n = 9
	addrs := make([]uint64, n)
	ctrs := make([]uint64, n)
	for k := range addrs {
		addrs[k] = uint64(k) * 0x40
		ctrs[k] = uint64(k * 31 % 7)
	}
	batch := make([]byte, n*LineSize)
	if err := e.PadBatch(batch, addrs, ctrs); err != nil {
		t.Fatal(err)
	}
	single := make([]byte, LineSize)
	for k := range addrs {
		if err := e.Pad(single, addrs[k], ctrs[k]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, batch[k*LineSize:(k+1)*LineSize]) {
			t.Fatalf("pad %d differs between Pad and PadBatch", k)
		}
	}
}

func TestPadBatchErrors(t *testing.T) {
	e := testEngine(t)
	if err := e.PadBatch(make([]byte, LineSize), []uint64{0, 1}, []uint64{0, 1}); !errors.Is(err, ErrBadLength) {
		t.Errorf("short dst: err = %v, want ErrBadLength", err)
	}
	if err := e.PadBatch(make([]byte, 2*LineSize), []uint64{0, 1}, []uint64{0}); err == nil {
		t.Error("mismatched addr/counter slices accepted")
	}
	if err := e.PadBatch(make([]byte, LineSize), []uint64{0}, []uint64{CounterMax + 1}); !errors.Is(err, ErrCounterOverflow) {
		t.Errorf("overflow counter: err = %v, want ErrCounterOverflow", err)
	}
}

func TestEncryptBatchMatchesEncrypt(t *testing.T) {
	e := testEngine(t)
	const n = 7
	rng := rand.New(rand.NewSource(5))
	src := make([]byte, n*LineSize)
	rng.Read(src)
	addrs := make([]uint64, n)
	ctrs := make([]uint64, n)
	for k := range addrs {
		addrs[k] = uint64(k+1) * 0x40
		ctrs[k] = uint64(k)
	}
	batch := make([]byte, n*LineSize)
	if err := e.EncryptBatch(batch, src, addrs, ctrs); err != nil {
		t.Fatal(err)
	}
	single := make([]byte, LineSize)
	for k := range addrs {
		if err := e.Encrypt(single, src[k*LineSize:(k+1)*LineSize], addrs[k], ctrs[k]); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(single, batch[k*LineSize:(k+1)*LineSize]) {
			t.Fatalf("line %d differs between Encrypt and EncryptBatch", k)
		}
	}
	// Round trip through DecryptBatch, in place.
	if err := e.DecryptBatch(batch, batch, addrs, ctrs); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(batch, src) {
		t.Fatal("EncryptBatch/DecryptBatch round trip failed")
	}
}

func BenchmarkEncryptLine(b *testing.B) {
	e := testEngine(b)
	line := make([]byte, LineSize)
	b.SetBytes(LineSize)
	for i := 0; i < b.N; i++ {
		_ = e.Encrypt(line, line, uint64(i)<<6, uint64(i)&CounterMax)
	}
}
