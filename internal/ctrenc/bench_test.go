package ctrenc

import "testing"

// BenchmarkPadGen measures OTP generation: one line at a time versus a
// whole batch sharing a single serialization scratch.
func BenchmarkPadGen(b *testing.B) {
	e := testEngine(b)
	b.Run("single", func(b *testing.B) {
		pad := make([]byte, LineSize)
		b.SetBytes(LineSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := e.Pad(pad, uint64(i)<<6, uint64(i)&CounterMax); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("batch32", func(b *testing.B) {
		const n = 32
		pads := make([]byte, n*LineSize)
		addrs := make([]uint64, n)
		ctrs := make([]uint64, n)
		b.SetBytes(n * LineSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for k := range addrs {
				addrs[k] = uint64(i*n+k) << 6
				ctrs[k] = uint64(k)
			}
			if err := e.PadBatch(pads, addrs, ctrs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
