// Package gmac implements a 64-bit Carter–Wegman message authentication
// code of the kind assumed throughout the SYNERGY paper (a "64-bit
// AES-GCM based GMAC", §II-A3).
//
// The construction is the classic universal-hash-then-encrypt MAC:
//
//	MAC(key, addr, ctr, data) = Poly_H(data) XOR AES_K(addr || ctr)
//
// where Poly_H is a polynomial hash over GF(2^64) evaluated at a secret
// point H derived from the key, and the pad AES_K(addr||ctr) binds the
// tag to the cacheline address and the per-line write counter so that
// relocating or replaying ciphertext is detected. A forgery or a random
// corruption survives verification with probability about 2^-64 — the
// property the paper's error-detection reuse (§III) and mis-correction
// analysis (§IV-A) rely on.
//
// Everything is implemented with the standard library only; the GF(2^64)
// carry-less multiplication is done in pure Go. Multiplication by the
// fixed hash point H — the only multiply the MAC ever performs — uses a
// per-key 4-bit windowed table (the standard GHASH acceleration), so
// each field multiply is 16 table lookups instead of a 64-iteration
// shift-and-add; see mulTable.
package gmac

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
	"sync"
)

// TagBits is the width of the authentication tag in bits.
const TagBits = 64

// TagSize is the width of the authentication tag in bytes. It equals the
// per-cacheline ECC-chip capacity of an x8 ECC-DIMM (8 bytes per 64-byte
// line), which is what lets Synergy co-locate the MAC with data.
const TagSize = 8

// KeySize is the size of the secret MAC key in bytes (an AES-128 key).
const KeySize = 16

// LineSize is the cacheline granularity of the SumLine fast path.
const LineSize = 64

// Mac computes 64-bit Carter–Wegman tags bound to an (address, counter)
// pair. It is safe for concurrent use by multiple goroutines after
// construction: all state is read-only.
type Mac struct {
	h     uint64       // secret GF(2^64) evaluation point
	tab   *mulTable    // 4-bit windowed multiply-by-h table
	block cipher.Block // AES for the one-time pad
}

// New creates a Mac from a 16-byte secret key.
//
// The key is expanded with AES: the hash point H is AES_K(0^16) truncated
// to 64 bits (mirroring how GCM derives its GHASH key), and the same AES
// instance whitens each tag with an address/counter-dependent pad. New
// also precomputes the 2 KB windowed multiplication table for H that the
// hot path uses in place of bit-serial field multiplication.
func New(key []byte) (*Mac, error) {
	if len(key) != KeySize {
		return nil, errors.New("gmac: key must be 16 bytes")
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	var zero, hblk [16]byte
	b.Encrypt(hblk[:], zero[:])
	h := binary.BigEndian.Uint64(hblk[:8])
	if h == 0 {
		// Point zero would hash every message to zero. Practically
		// unreachable (probability 2^-64) but trivially avoidable.
		h = 1
	}
	return &Mac{h: h, tab: newMulTable(h), block: b}, nil
}

// Sum returns the 64-bit tag for data stored at the given cacheline
// address with the given encryption counter. len(data) may be anything;
// it is processed in 8-byte words (zero-padded) with the total bit
// length folded into the polynomial so that messages of different
// lengths cannot collide trivially.
func (m *Mac) Sum(addr uint64, counter uint64, data []byte) uint64 {
	return m.polyHash(data) ^ m.pad(addr, counter)
}

// Verify reports whether tag authenticates data at (addr, counter).
func (m *Mac) Verify(addr uint64, counter uint64, data []byte, tag uint64) bool {
	return m.Sum(addr, counter, data) == tag
}

// SumBytes is Sum with the tag serialized big-endian into an 8-byte slice.
func (m *Mac) SumBytes(addr uint64, counter uint64, data []byte) []byte {
	var out [TagSize]byte
	binary.BigEndian.PutUint64(out[:], m.Sum(addr, counter, data))
	return out[:]
}

// SumLine is the fixed-size fast path for whole 64-byte cachelines: the
// tag equals Sum(addr, counter, line[:]) but the polynomial is evaluated
// with the word loop fully unrolled and no slice bookkeeping. This is
// the form the engine's per-access verify/seal paths use.
func (m *Mac) SumLine(addr uint64, counter uint64, line *[LineSize]byte) uint64 {
	t := m.tab
	acc := t.mul(binary.BigEndian.Uint64(line[0:8]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(line[8:16]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(line[16:24]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(line[24:32]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(line[32:40]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(line[40:48]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(line[48:56]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(line[56:64]))
	acc = t.mul(acc ^ LineSize<<3 ^ lenMixin)
	return acc ^ m.pad(addr, counter)
}

// Sum56 is the fixed-size fast path for 56-byte node payloads (the MACed
// content of counter/tree lines: eight 7-byte counters, or a split
// node's major + minors). The tag equals Sum(addr, counter, buf[:]).
func (m *Mac) Sum56(addr uint64, counter uint64, buf *[56]byte) uint64 {
	t := m.tab
	acc := t.mul(binary.BigEndian.Uint64(buf[0:8]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(buf[8:16]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(buf[16:24]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(buf[24:32]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(buf[32:40]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(buf[40:48]))
	acc = t.mul(acc ^ binary.BigEndian.Uint64(buf[48:56]))
	acc = t.mul(acc ^ 56<<3 ^ lenMixin)
	return acc ^ m.pad(addr, counter)
}

// aesScratch holds the AES input/output blocks for pad computation. The
// blocks are pooled rather than stack-allocated because slices passed
// through the cipher.Block interface escape, and the verify path runs
// once per memory access.
type aesScratch struct{ in, out [16]byte }

var padPool = sync.Pool{New: func() any { return new(aesScratch) }}

// pad computes AES_K(addr || counter) truncated to 64 bits.
func (m *Mac) pad(addr, counter uint64) uint64 {
	s := padPool.Get().(*aesScratch)
	binary.BigEndian.PutUint64(s.in[:8], addr)
	binary.BigEndian.PutUint64(s.in[8:], counter)
	m.block.Encrypt(s.out[:], s.in[:])
	p := binary.BigEndian.Uint64(s.out[:8])
	padPool.Put(s)
	return p
}

// polyHash evaluates the GF(2^64) polynomial whose coefficients are the
// 8-byte words of data (zero padded), followed by the total bit length,
// at point h: ((w0·h + w1)·h + ... + len)·h.
func (m *Mac) polyHash(data []byte) uint64 {
	total := uint64(len(data))
	var acc uint64
	for len(data) >= 8 {
		acc = m.tab.mul(acc ^ binary.BigEndian.Uint64(data[:8]))
		data = data[8:]
	}
	if len(data) > 0 {
		var last [8]byte
		copy(last[:], data)
		acc = m.tab.mul(acc ^ binary.BigEndian.Uint64(last[:]))
	}
	return m.tab.mul(acc ^ total<<3 ^ lenMixin)
}

// lenMixin separates the final length block from data blocks.
const lenMixin = 0xa5a5a5a5a5a5a5a5

// gfPoly is the reduction polynomial for GF(2^64):
// x^64 + x^4 + x^3 + x + 1 (a standard irreducible pentanomial).
const gfPoly = 0x1b

// mulTable accelerates multiplication by a fixed field element h with
// 4-bit windows: tab[i][w] = (w·x^(4i))·h, so a·h is the XOR of 16
// lookups, one per nibble of a. 16×16 uint64 = 2 KB per key, L1-resident.
type mulTable [16][16]uint64

// newMulTable precomputes the windowed table for h using the reference
// shift-and-add multiply (256 multiplies, key-setup only).
func newMulTable(h uint64) *mulTable {
	t := new(mulTable)
	for i := 0; i < 16; i++ {
		for w := 1; w < 16; w++ {
			t[i][w] = gfMul(uint64(w)<<(4*i), h)
		}
	}
	return t
}

// mul returns a·h, fully unrolled: 16 loads and 15 XORs.
func (t *mulTable) mul(a uint64) uint64 {
	return t[0][a&0xF] ^
		t[1][a>>4&0xF] ^
		t[2][a>>8&0xF] ^
		t[3][a>>12&0xF] ^
		t[4][a>>16&0xF] ^
		t[5][a>>20&0xF] ^
		t[6][a>>24&0xF] ^
		t[7][a>>28&0xF] ^
		t[8][a>>32&0xF] ^
		t[9][a>>36&0xF] ^
		t[10][a>>40&0xF] ^
		t[11][a>>44&0xF] ^
		t[12][a>>48&0xF] ^
		t[13][a>>52&0xF] ^
		t[14][a>>56&0xF] ^
		t[15][a>>60&0xF]
}

// gfMul multiplies two elements of GF(2^64) (carry-less multiply reduced
// modulo gfPoly). Pure Go, constant 64-iteration shift-and-add. This is
// the reference implementation: the hot path multiplies through mulTable
// instead, and the differential tests pin the table against this.
func gfMul(a, b uint64) uint64 {
	var p uint64
	for i := 0; i < 64; i++ {
		// Branch-free select of b when bit i of a is set.
		p ^= b & -(a & 1)
		a >>= 1
		// Multiply b by x, reducing on overflow of the top bit.
		hi := b >> 63
		b = (b << 1) ^ (gfPoly & -hi)
	}
	return p
}

// GFMul exposes the field multiplication for tests and for reuse by the
// integrity-tree package (which hashes node contents the same way).
func GFMul(a, b uint64) uint64 { return gfMul(a, b) }
