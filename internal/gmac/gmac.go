// Package gmac implements a 64-bit Carter–Wegman message authentication
// code of the kind assumed throughout the SYNERGY paper (a "64-bit
// AES-GCM based GMAC", §II-A3).
//
// The construction is the classic universal-hash-then-encrypt MAC:
//
//	MAC(key, addr, ctr, data) = Poly_H(data) XOR AES_K(addr || ctr)
//
// where Poly_H is a polynomial hash over GF(2^64) evaluated at a secret
// point H derived from the key, and the pad AES_K(addr||ctr) binds the
// tag to the cacheline address and the per-line write counter so that
// relocating or replaying ciphertext is detected. A forgery or a random
// corruption survives verification with probability about 2^-64 — the
// property the paper's error-detection reuse (§III) and mis-correction
// analysis (§IV-A) rely on.
//
// Everything is implemented with the standard library only; the GF(2^64)
// carry-less multiplication is done in pure Go.
package gmac

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
	"errors"
)

// TagBits is the width of the authentication tag in bits.
const TagBits = 64

// TagSize is the width of the authentication tag in bytes. It equals the
// per-cacheline ECC-chip capacity of an x8 ECC-DIMM (8 bytes per 64-byte
// line), which is what lets Synergy co-locate the MAC with data.
const TagSize = 8

// KeySize is the size of the secret MAC key in bytes (an AES-128 key).
const KeySize = 16

// Mac computes 64-bit Carter–Wegman tags bound to an (address, counter)
// pair. It is safe for concurrent use by multiple goroutines after
// construction: all state is read-only.
type Mac struct {
	h     uint64       // secret GF(2^64) evaluation point
	block cipher.Block // AES for the one-time pad
}

// New creates a Mac from a 16-byte secret key.
//
// The key is expanded with AES: the hash point H is AES_K(0^16) truncated
// to 64 bits (mirroring how GCM derives its GHASH key), and the same AES
// instance whitens each tag with an address/counter-dependent pad.
func New(key []byte) (*Mac, error) {
	if len(key) != KeySize {
		return nil, errors.New("gmac: key must be 16 bytes")
	}
	b, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	var zero, hblk [16]byte
	b.Encrypt(hblk[:], zero[:])
	h := binary.BigEndian.Uint64(hblk[:8])
	if h == 0 {
		// Point zero would hash every message to zero. Practically
		// unreachable (probability 2^-64) but trivially avoidable.
		h = 1
	}
	return &Mac{h: h, block: b}, nil
}

// Sum returns the 64-bit tag for data stored at the given cacheline
// address with the given encryption counter. len(data) may be anything;
// it is processed in 8-byte words (zero-padded) with the length folded
// into the polynomial so that messages of different lengths cannot
// collide trivially.
func (m *Mac) Sum(addr uint64, counter uint64, data []byte) uint64 {
	acc := polyHash(m.h, data)
	return acc ^ m.pad(addr, counter)
}

// Verify reports whether tag authenticates data at (addr, counter).
func (m *Mac) Verify(addr uint64, counter uint64, data []byte, tag uint64) bool {
	return m.Sum(addr, counter, data) == tag
}

// SumBytes is Sum with the tag serialized big-endian into an 8-byte slice.
func (m *Mac) SumBytes(addr uint64, counter uint64, data []byte) []byte {
	var out [TagSize]byte
	binary.BigEndian.PutUint64(out[:], m.Sum(addr, counter, data))
	return out[:]
}

// pad computes AES_K(addr || counter) truncated to 64 bits.
func (m *Mac) pad(addr, counter uint64) uint64 {
	var in, out [16]byte
	binary.BigEndian.PutUint64(in[:8], addr)
	binary.BigEndian.PutUint64(in[8:], counter)
	m.block.Encrypt(out[:], in[:])
	return binary.BigEndian.Uint64(out[:8])
}

// polyHash evaluates the GF(2^64) polynomial whose coefficients are the
// 8-byte words of data (zero padded), followed by the bit length, at
// point h: ((w0·h + w1)·h + ... + len)·h.
func polyHash(h uint64, data []byte) uint64 {
	var acc uint64
	for len(data) >= 8 {
		acc = gfMul(acc^binary.BigEndian.Uint64(data[:8]), h)
		data = data[8:]
	}
	if len(data) > 0 {
		var last [8]byte
		copy(last[:], data)
		acc = gfMul(acc^binary.BigEndian.Uint64(last[:]), h)
	}
	return gfMul(acc^uint64(len(data))<<3^uint64(lenMixin), h)
}

// lenMixin separates the final length block from data blocks.
const lenMixin = 0xa5a5a5a5a5a5a5a5

// gfPoly is the reduction polynomial for GF(2^64):
// x^64 + x^4 + x^3 + x + 1 (a standard irreducible pentanomial).
const gfPoly = 0x1b

// gfMul multiplies two elements of GF(2^64) (carry-less multiply reduced
// modulo gfPoly). Pure Go, constant 64-iteration shift-and-add.
func gfMul(a, b uint64) uint64 {
	var p uint64
	for i := 0; i < 64; i++ {
		// Branch-free select of b when bit i of a is set.
		p ^= b & -(a & 1)
		a >>= 1
		// Multiply b by x, reducing on overflow of the top bit.
		hi := b >> 63
		b = (b << 1) ^ (gfPoly & -hi)
	}
	return p
}

// GFMul exposes the field multiplication for tests and for reuse by the
// integrity-tree package (which hashes node contents the same way).
func GFMul(a, b uint64) uint64 { return gfMul(a, b) }
