package gmac

import (
	"bytes"
	"testing"
)

// FuzzSumVsHasher cross-checks the one-shot and incremental tag
// computations over arbitrary data and arbitrary write splits.
func FuzzSumVsHasher(f *testing.F) {
	f.Add(uint64(0), uint64(0), []byte(nil), uint8(0))
	f.Add(uint64(0x1000), uint64(7), []byte("sixty-four bytes of cacheline data"), uint8(3))
	f.Add(uint64(42), uint64(1), bytes.Repeat([]byte{0}, 24), uint8(1))
	m, err := New(bytes.Repeat([]byte{0x42}, KeySize))
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, addr, ctr uint64, data []byte, split uint8) {
		want := m.Sum(addr, ctr, data)
		h := m.NewHasher(addr, ctr)
		// Write in chunks of size split+1 to exercise buffered tails.
		chunk := int(split) + 1
		for rest := data; len(rest) > 0; {
			k := chunk
			if k > len(rest) {
				k = len(rest)
			}
			h.Write(rest[:k])
			rest = rest[k:]
		}
		if got := h.Sum64(); got != want {
			t.Fatalf("Hasher.Sum64 = %x, Mac.Sum = %x (len %d, chunk %d)", got, want, len(data), chunk)
		}
		if !m.Verify(addr, ctr, data, want) {
			t.Fatalf("Verify rejected its own tag")
		}
	})
}
