package gmac

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func testKey(t testing.TB) *Mac {
	t.Helper()
	m, err := New(bytes.Repeat([]byte{0x42}, KeySize))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestNewRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New accepted %d-byte key", n)
		}
	}
}

func TestNewAcceptsGoodKey(t *testing.T) {
	if _, err := New(make([]byte, KeySize)); err != nil {
		t.Fatalf("New rejected valid key: %v", err)
	}
}

func TestSumDeterministic(t *testing.T) {
	m := testKey(t)
	data := []byte("sixty-four bytes of cacheline data .............................")[:64]
	a := m.Sum(0x1000, 7, data)
	b := m.Sum(0x1000, 7, data)
	if a != b {
		t.Fatalf("Sum not deterministic: %x vs %x", a, b)
	}
}

func TestSumDependsOnAddress(t *testing.T) {
	m := testKey(t)
	data := make([]byte, 64)
	if m.Sum(0x1000, 1, data) == m.Sum(0x1040, 1, data) {
		t.Fatal("tags for different addresses collide")
	}
}

func TestSumDependsOnCounter(t *testing.T) {
	m := testKey(t)
	data := make([]byte, 64)
	if m.Sum(0x1000, 1, data) == m.Sum(0x1000, 2, data) {
		t.Fatal("tags for different counters collide")
	}
}

func TestSumDependsOnKey(t *testing.T) {
	m1, _ := New(bytes.Repeat([]byte{1}, KeySize))
	m2, _ := New(bytes.Repeat([]byte{2}, KeySize))
	data := make([]byte, 64)
	if m1.Sum(0, 0, data) == m2.Sum(0, 0, data) {
		t.Fatal("tags under different keys collide")
	}
}

func TestVerifyRoundTrip(t *testing.T) {
	m := testKey(t)
	data := []byte("hello, secure memory")
	tag := m.Sum(5, 9, data)
	if !m.Verify(5, 9, data, tag) {
		t.Fatal("Verify rejected a genuine tag")
	}
	if m.Verify(5, 9, data, tag^1) {
		t.Fatal("Verify accepted a flipped tag")
	}
}

func TestSumBytesMatchesSum(t *testing.T) {
	m := testKey(t)
	data := []byte("abcdefgh12345678")
	want := m.Sum(3, 4, data)
	got := binary.BigEndian.Uint64(m.SumBytes(3, 4, data))
	if got != want {
		t.Fatalf("SumBytes = %x, want %x", got, want)
	}
}

// Every single-bit flip in a 64-byte line must change the tag: this is the
// error-detection property Synergy re-uses (paper §III).
func TestSingleBitFlipDetected(t *testing.T) {
	m := testKey(t)
	data := make([]byte, 64)
	rng := rand.New(rand.NewSource(1))
	rng.Read(data)
	orig := m.Sum(0x40, 11, data)
	for byteIdx := range data {
		for bit := 0; bit < 8; bit++ {
			data[byteIdx] ^= 1 << bit
			if m.Sum(0x40, 11, data) == orig {
				t.Fatalf("bit flip at byte %d bit %d undetected", byteIdx, bit)
			}
			data[byteIdx] ^= 1 << bit
		}
	}
}

// Whole-chip corruption (any change to one aligned 8-byte slice) must be
// detected — the chip-failure case of Fig. 5.
func TestChipSliceCorruptionDetected(t *testing.T) {
	m := testKey(t)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		data := make([]byte, 64)
		rng.Read(data)
		orig := m.Sum(0x80, 3, data)
		chip := rng.Intn(8)
		slice := data[chip*8 : chip*8+8]
		old := make([]byte, 8)
		copy(old, slice)
		rng.Read(slice)
		if bytes.Equal(old, slice) {
			continue
		}
		if m.Sum(0x80, 3, data) == orig {
			t.Fatalf("trial %d: chip %d corruption undetected", trial, chip)
		}
	}
}

func TestDifferentLengthsDiffer(t *testing.T) {
	m := testKey(t)
	// A message and the same message zero-extended must not collide.
	a := []byte{1, 2, 3}
	b := []byte{1, 2, 3, 0}
	if m.Sum(0, 0, a) == m.Sum(0, 0, b) {
		t.Fatal("zero-extension collision")
	}
	if m.Sum(0, 0, nil) == m.Sum(0, 0, []byte{0}) {
		t.Fatal("empty vs single-zero collision")
	}
}

// Regression test for the length-fold bug: the fold must cover the true
// total length, not total mod 8, so zero-extension by whole words must
// change the tag too (the empty message used to collide with 8, 16, 24…
// zero bytes).
func TestWholeWordZeroExtensionDiffers(t *testing.T) {
	m := testKey(t)
	seen := map[uint64]int{m.Sum(0, 0, nil): 0}
	for n := 8; n <= 64; n += 8 {
		tag := m.Sum(0, 0, make([]byte, n))
		if prev, dup := seen[tag]; dup {
			t.Fatalf("%d zero bytes collide with %d zero bytes", n, prev)
		}
		seen[tag] = n
	}
}

func TestSumLineMatchesSum(t *testing.T) {
	m := testKey(t)
	f := func(seed int64, addr, ctr uint64) bool {
		var line [LineSize]byte
		rand.New(rand.NewSource(seed)).Read(line[:])
		return m.SumLine(addr, ctr, &line) == m.Sum(addr, ctr, line[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSum56MatchesSum(t *testing.T) {
	m := testKey(t)
	f := func(seed int64, addr, ctr uint64) bool {
		var buf [56]byte
		rand.New(rand.NewSource(seed)).Read(buf[:])
		return m.Sum56(addr, ctr, &buf) == m.Sum(addr, ctr, buf[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestGFMulTableVsReference pins the table-driven multiply-by-H against
// the shift-and-add reference that built it.
func TestGFMulTableVsReference(t *testing.T) {
	for _, h := range []uint64{1, 2, 0x1b, 1 << 63, 0xdeadbeefcafef00d} {
		tab := newMulTable(h)
		f := func(a uint64) bool { return tab.mul(a) == gfMul(a, h) }
		if err := quick.Check(f, nil); err != nil {
			t.Fatalf("h=%#x: %v", h, err)
		}
	}
	// And for a real key-derived point.
	m := testKey(t)
	f := func(a uint64) bool { return m.tab.mul(a) == gfMul(a, m.h) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Mac.Sum and Hasher.Sum64 must agree for every length, including the
// whole-word tails where the two length folds used to diverge from the
// specification.
func TestSumVsHasherAllLengths(t *testing.T) {
	m := testKey(t)
	rng := rand.New(rand.NewSource(7))
	data := make([]byte, 130)
	rng.Read(data)
	for n := 0; n <= len(data); n++ {
		want := m.Sum(11, 13, data[:n])
		h := m.NewHasher(11, 13)
		h.Write(data[:n])
		if got := h.Sum64(); got != want {
			t.Fatalf("len %d: Hasher.Sum64 = %x, Mac.Sum = %x", n, got, want)
		}
	}
}

// --- GF(2^64) field properties (property-based) ---

func TestGFMulCommutative(t *testing.T) {
	f := func(a, b uint64) bool { return GFMul(a, b) == GFMul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFMulAssociative(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return GFMul(GFMul(a, b), c) == GFMul(a, GFMul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFMulDistributesOverXor(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return GFMul(a, b^c) == GFMul(a, b)^GFMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFMulIdentityAndZero(t *testing.T) {
	f := func(a uint64) bool {
		return GFMul(a, 1) == a && GFMul(1, a) == a && GFMul(a, 0) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// x^64 ≡ x^4 + x^3 + x + 1 (the reduction polynomial).
func TestGFMulReduction(t *testing.T) {
	// (x^63) * x = x^64 = 0x1b
	if got := GFMul(1<<63, 2); got != 0x1b {
		t.Fatalf("x^63 * x = %#x, want 0x1b", got)
	}
}

// Tag distribution sanity: over random inputs, each tag bit should be set
// roughly half the time.
func TestTagBitBalance(t *testing.T) {
	m := testKey(t)
	rng := rand.New(rand.NewSource(3))
	const n = 2000
	var counts [64]int
	data := make([]byte, 64)
	for i := 0; i < n; i++ {
		rng.Read(data)
		tag := m.Sum(uint64(i)*64, uint64(i), data)
		for b := 0; b < 64; b++ {
			if tag&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		if c < n/3 || c > 2*n/3 {
			t.Errorf("tag bit %d set %d/%d times — badly skewed", b, c, n)
		}
	}
}

func BenchmarkSum64B(b *testing.B) {
	m := testKey(b)
	data := make([]byte, 64)
	b.SetBytes(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Sum(uint64(i), 1, data)
	}
}
