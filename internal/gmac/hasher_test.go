package gmac

import (
	"bytes"
	"hash"
	"math/rand"
	"testing"
	"testing/quick"
)

var _ hash.Hash64 = (*Hasher)(nil)

func TestHasherMatchesSum(t *testing.T) {
	m := testKey(t)
	f := func(seed int64, addr, ctr uint64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, int(n)%300)
		rng.Read(data)
		want := m.Sum(addr, ctr, data)
		h := m.NewHasher(addr, ctr)
		// Write in random-sized chunks.
		rest := data
		for len(rest) > 0 {
			k := 1 + rng.Intn(len(rest))
			h.Write(rest[:k])
			rest = rest[k:]
		}
		return h.Sum64() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHasherEmpty(t *testing.T) {
	m := testKey(t)
	h := m.NewHasher(9, 4)
	if h.Sum64() != m.Sum(9, 4, nil) {
		t.Fatal("empty hasher disagrees with Sum(nil)")
	}
}

func TestHasherSumIsIdempotent(t *testing.T) {
	m := testKey(t)
	h := m.NewHasher(1, 2)
	h.Write([]byte("partial-word tail"))
	a := h.Sum64()
	b := h.Sum64()
	if a != b {
		t.Fatal("Sum64 mutated state")
	}
	// Continuing after a Sum64 must match a fresh computation.
	h.Write([]byte("!more"))
	want := m.Sum(1, 2, []byte("partial-word tail!more"))
	if h.Sum64() != want {
		t.Fatal("continuation after Sum64 diverged")
	}
}

func TestHasherReset(t *testing.T) {
	m := testKey(t)
	h := m.NewHasher(5, 6)
	h.Write([]byte("garbage to be discarded"))
	h.Reset()
	h.Write([]byte("fresh"))
	if h.Sum64() != m.Sum(5, 6, []byte("fresh")) {
		t.Fatal("Reset did not restart the stream")
	}
}

func TestHasherSumAppends(t *testing.T) {
	m := testKey(t)
	h := m.NewHasher(7, 8)
	h.Write([]byte("abc"))
	out := h.Sum([]byte{0xEE})
	if len(out) != 1+TagSize || out[0] != 0xEE {
		t.Fatalf("Sum append wrong: %x", out)
	}
	if !bytes.Equal(out[1:], m.SumBytes(7, 8, []byte("abc"))) {
		t.Fatal("appended tag wrong")
	}
}

func TestHasherInterface(t *testing.T) {
	m := testKey(t)
	h := m.NewHasher(0, 0)
	if h.Size() != TagSize || h.BlockSize() != 8 {
		t.Fatalf("Size/BlockSize = %d/%d", h.Size(), h.BlockSize())
	}
}
