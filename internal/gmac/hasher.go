package gmac

import "encoding/binary"

// Hasher computes the same tag as Mac.Sum incrementally, so callers can
// MAC streamed or scattered content (e.g. serialized metadata) without
// assembling a contiguous buffer. It implements hash.Hash64.
//
// A Hasher is bound to one (address, counter) pair at creation; Reset
// restarts the data stream under the same binding. Not safe for
// concurrent use.
type Hasher struct {
	m       *Mac
	addr    uint64
	counter uint64

	acc   uint64
	buf   [8]byte
	nbuf  int
	total int
}

// NewHasher starts an incremental tag computation bound to (addr,
// counter).
func (m *Mac) NewHasher(addr, counter uint64) *Hasher {
	return &Hasher{m: m, addr: addr, counter: counter}
}

// Write absorbs p into the polynomial. It never fails.
func (h *Hasher) Write(p []byte) (int, error) {
	n := len(p)
	h.total += n
	if h.nbuf > 0 {
		k := copy(h.buf[h.nbuf:], p)
		h.nbuf += k
		p = p[k:]
		if h.nbuf == 8 {
			h.acc = h.m.tab.mul(h.acc ^ binary.BigEndian.Uint64(h.buf[:]))
			h.nbuf = 0
		}
	}
	for len(p) >= 8 {
		h.acc = h.m.tab.mul(h.acc ^ binary.BigEndian.Uint64(p[:8]))
		p = p[8:]
	}
	if len(p) > 0 {
		h.nbuf = copy(h.buf[:], p)
	}
	return n, nil
}

// Sum64 returns the tag for everything written so far. It does not
// consume the state: more data may be written afterwards (the returned
// tag then becomes stale).
func (h *Hasher) Sum64() uint64 {
	acc := h.acc
	if h.nbuf > 0 {
		var last [8]byte
		copy(last[:], h.buf[:h.nbuf])
		acc = h.m.tab.mul(acc ^ binary.BigEndian.Uint64(last[:]))
	}
	acc = h.m.tab.mul(acc ^ uint64(h.total)<<3 ^ uint64(lenMixin))
	return acc ^ h.m.pad(h.addr, h.counter)
}

// Sum appends the big-endian tag to b (hash.Hash).
func (h *Hasher) Sum(b []byte) []byte {
	var out [TagSize]byte
	binary.BigEndian.PutUint64(out[:], h.Sum64())
	return append(b, out[:]...)
}

// Reset restarts the stream under the same (addr, counter) binding.
func (h *Hasher) Reset() {
	h.acc = 0
	h.nbuf = 0
	h.total = 0
}

// Size returns the tag size in bytes (hash.Hash).
func (h *Hasher) Size() int { return TagSize }

// BlockSize returns the absorption block size in bytes (hash.Hash).
func (h *Hasher) BlockSize() int { return 8 }
