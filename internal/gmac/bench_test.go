package gmac

import "testing"

// BenchmarkGFMul compares the shift-and-add reference multiply against
// the per-key windowed-table multiply-by-H the hot path uses. The
// acceptance bar for the table path is ≥ 4× over the reference.
func BenchmarkGFMul(b *testing.B) {
	m := testKey(b)
	b.Run("ref", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc = gfMul(acc^uint64(i), m.h)
		}
		sinkU64 = acc
	})
	b.Run("table", func(b *testing.B) {
		var acc uint64
		for i := 0; i < b.N; i++ {
			acc = m.tab.mul(acc ^ uint64(i))
		}
		sinkU64 = acc
	})
}

// sinkU64 keeps the compiler from eliding benchmark bodies.
var sinkU64 uint64

func BenchmarkSumLine(b *testing.B) {
	m := testKey(b)
	var line [LineSize]byte
	b.SetBytes(LineSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU64 = m.SumLine(uint64(i), 1, &line)
	}
}

func BenchmarkSum56(b *testing.B) {
	m := testKey(b)
	var buf [56]byte
	b.SetBytes(56)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkU64 = m.Sum56(uint64(i), 1, &buf)
	}
}
