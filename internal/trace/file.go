package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace file format: the paper's methodology slices benchmark traces
// with Pin and feeds them to USIMM; this file format plays that role
// for our simulator — synthetic streams can be recorded once and
// replayed exactly, and externally captured access streams can be
// converted and fed to the performance model.
//
// Layout (all multi-byte integers are uvarint unless noted):
//
//	magic   [8]byte  "SYNTRC\x01\x00"
//	name    uvarint length + bytes
//	count   uvarint  number of access records
//	records count × { gap uvarint, addrDelta zigzag-uvarint, flags byte }
//
// Addresses are delta-encoded against the previous access (zigzag), so
// streaming workloads compress to ~3 bytes per access.

var traceMagic = [8]byte{'S', 'Y', 'N', 'T', 'R', 'C', 1, 0}

const (
	flagWrite     = 1 << 0
	flagDependent = 1 << 1
)

// Source produces an access stream; *Stream and *Replay implement it.
type Source interface {
	Next() Access
}

// WriteTrace records n accesses from src to w.
func WriteTrace(w io.Writer, name string, n int, src Source) error {
	if n <= 0 {
		return errors.New("trace: must record at least one access")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	if err := putUvarint(uint64(len(name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(name); err != nil {
		return err
	}
	if err := putUvarint(uint64(n)); err != nil {
		return err
	}
	var prev uint64
	for i := 0; i < n; i++ {
		a := src.Next()
		if err := putUvarint(a.Gap); err != nil {
			return err
		}
		delta := int64(a.Addr) - int64(prev)
		if err := putUvarint(zigzag(delta)); err != nil {
			return err
		}
		prev = a.Addr
		var flags byte
		if a.Write {
			flags |= flagWrite
		}
		if a.Dependent {
			flags |= flagDependent
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace loads a recorded trace fully into memory.
func ReadTrace(r io.Reader) (name string, accs []Access, err error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return "", nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != traceMagic {
		return "", nil, errors.New("trace: not a synergy trace file (bad magic)")
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return "", nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	if nameLen > 4096 {
		return "", nil, errors.New("trace: implausible name length")
	}
	nameBytes := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBytes); err != nil {
		return "", nil, fmt.Errorf("trace: reading name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return "", nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count == 0 {
		return "", nil, errors.New("trace: empty trace")
	}
	if count > 1<<32 {
		return "", nil, errors.New("trace: implausible record count")
	}
	accs = make([]Access, 0, count)
	var prev uint64
	for i := uint64(0); i < count; i++ {
		gap, err := binary.ReadUvarint(br)
		if err != nil {
			return "", nil, fmt.Errorf("trace: record %d gap: %w", i, err)
		}
		zz, err := binary.ReadUvarint(br)
		if err != nil {
			return "", nil, fmt.Errorf("trace: record %d addr: %w", i, err)
		}
		addr := uint64(int64(prev) + unzigzag(zz))
		prev = addr
		flags, err := br.ReadByte()
		if err != nil {
			return "", nil, fmt.Errorf("trace: record %d flags: %w", i, err)
		}
		accs = append(accs, Access{
			Gap:       gap,
			Addr:      addr,
			Write:     flags&flagWrite != 0,
			Dependent: flags&flagDependent != 0,
		})
	}
	return string(nameBytes), accs, nil
}

// Replay is a Source that cycles through a recorded access sequence
// (simulations often need more accesses than were recorded; looping a
// representative slice is exactly the paper's Pin-point methodology).
type Replay struct {
	name string
	accs []Access
	pos  int
}

// NewReplay wraps a loaded access sequence.
func NewReplay(name string, accs []Access) (*Replay, error) {
	if len(accs) == 0 {
		return nil, errors.New("trace: replay needs at least one access")
	}
	return &Replay{name: name, accs: accs}, nil
}

// Name returns the recorded workload name.
func (p *Replay) Name() string { return p.name }

// Len returns the recorded sequence length.
func (p *Replay) Len() int { return len(p.accs) }

// Next returns the next access, looping at the end of the recording.
func (p *Replay) Next() Access {
	a := p.accs[p.pos]
	p.pos++
	if p.pos == len(p.accs) {
		p.pos = 0
	}
	return a
}

func zigzag(v int64) uint64 {
	return uint64(v<<1) ^ uint64(v>>63)
}

func unzigzag(v uint64) int64 {
	return int64(v>>1) ^ -int64(v&1)
}

// Accesses returns the underlying recorded sequence (shared, do not
// modify); useful for cloning replays.
func (p *Replay) Accesses() []Access { return p.accs }
