package trace

import (
	"bytes"
	"testing"
)

// FuzzReadTrace: arbitrary bytes must never panic the parser, and
// anything it accepts must round-trip back to identical bytes'
// semantics via WriteTrace.
func FuzzReadTrace(f *testing.F) {
	// Seed with a genuine trace.
	p, _ := ByName("mcf")
	var buf bytes.Buffer
	if err := WriteTrace(&buf, "mcf", 64, NewStream(p, 0, 1)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(traceMagic[:])
	f.Fuzz(func(t *testing.T, data []byte) {
		name, accs, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted: re-encoding must produce a parseable, equivalent trace.
		rp, err := NewReplay(name, accs)
		if err != nil {
			t.Fatalf("accepted trace not replayable: %v", err)
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, name, len(accs), rp); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		name2, accs2, err := ReadTrace(&out)
		if err != nil || name2 != name || len(accs2) != len(accs) {
			t.Fatalf("round trip broke: %v", err)
		}
		for i := range accs {
			if accs[i] != accs2[i] {
				t.Fatalf("record %d changed", i)
			}
		}
	})
}
