// Package trace generates the synthetic workload address streams that
// stand in for the paper's SPEC2006 and GAP Pin-point traces (see
// DESIGN.md §3 for the substitution rationale). Each benchmark is a
// profile — post-L2 accesses per kilo-instruction, read/write split,
// footprint, and a locality mixture of streaming, pointer-chasing and
// random components — calibrated to the published memory behaviour of
// the benchmark it stands in for. The experiments measure how metadata
// traffic interacts with bandwidth saturation, which these parameters
// control.
package trace

import (
	"fmt"
	"math/rand"
)

// Access is one post-L2 memory reference.
type Access struct {
	// Gap is the number of instructions since the previous access.
	Gap uint64
	// Addr is the 64-byte line address.
	Addr uint64
	// Write marks stores.
	Write bool
	// Dependent marks loads whose address depends on the previous load
	// (pointer chasing): they cannot issue until it returns.
	Dependent bool
}

// Profile describes one benchmark's memory behaviour.
type Profile struct {
	Name  string
	Suite string // "SPECint", "SPECfp", "GAP", "MIX"

	// APKI is post-L2 accesses per kilo-instruction (reads+writes).
	APKI float64
	// WriteFrac is the store fraction of accesses.
	WriteFrac float64
	// FootprintLines is the total touched region in cachelines.
	FootprintLines uint64
	// StreamFrac of accesses walk sequentially (high row-buffer hits).
	StreamFrac float64
	// PointerFrac of accesses are dependent random loads (no MLP).
	PointerFrac float64
	// HotFrac of the remaining random accesses fall in HotLines.
	HotFrac  float64
	HotLines uint64
	// InstrScale multiplies the harness's per-core instruction budget;
	// workloads whose footprint needs several traversals to reach
	// steady state (the web graphs) set it above 1.
	InstrScale float64
}

// Stream produces the access sequence of one core running a profile.
type Stream struct {
	p       Profile
	rng     *rand.Rand
	seqAddr uint64
	base    uint64
	mixes   []*Stream // non-nil for MIX workloads
	mixIdx  int
}

// NewStream builds a deterministic generator for profile p. The base
// offsets all addresses (rate mode gives each core a disjoint copy);
// seed varies the stream per core.
func NewStream(p Profile, base uint64, seed int64) *Stream {
	if p.FootprintLines == 0 {
		p.FootprintLines = 1
	}
	if p.HotLines == 0 || p.HotLines > p.FootprintLines {
		p.HotLines = p.FootprintLines / 8
		if p.HotLines == 0 {
			p.HotLines = 1
		}
	}
	return &Stream{
		p:    p,
		rng:  rand.New(rand.NewSource(seed ^ int64(hashName(p.Name)))),
		base: base,
	}
}

// NewMixStream interleaves several profiles round-robin, as the paper's
// mixed workloads combine 4 benchmarks.
func NewMixStream(name string, parts []Profile, base uint64, seed int64) *Stream {
	s := &Stream{p: Profile{Name: name, Suite: "MIX"}}
	for i, p := range parts {
		// Spread the component footprints apart.
		s.mixes = append(s.mixes, NewStream(p, base+uint64(i)<<34, seed+int64(i)))
	}
	return s
}

// Profile returns the stream's profile.
func (s *Stream) Profile() Profile { return s.p }

func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// Next returns the stream's next access.
func (s *Stream) Next() Access {
	if s.mixes != nil {
		a := s.mixes[s.mixIdx].Next()
		s.mixIdx = (s.mixIdx + 1) % len(s.mixes)
		return a
	}
	p := &s.p
	// Geometric inter-access gap with mean 1000/APKI instructions.
	mean := 1000.0 / p.APKI
	gap := uint64(s.rng.ExpFloat64()*mean) + 1

	a := Access{Gap: gap}
	a.Write = s.rng.Float64() < p.WriteFrac

	r := s.rng.Float64()
	switch {
	case r < p.StreamFrac:
		s.seqAddr = (s.seqAddr + 1) % p.FootprintLines
		a.Addr = s.base + s.seqAddr
	case r < p.StreamFrac+p.PointerFrac:
		a.Addr = s.base + uint64(s.rng.Int63n(int64(p.FootprintLines)))
		a.Dependent = !a.Write
	default:
		if s.rng.Float64() < p.HotFrac {
			a.Addr = s.base + uint64(s.rng.Int63n(int64(p.HotLines)))
		} else {
			a.Addr = s.base + uint64(s.rng.Int63n(int64(p.FootprintLines)))
		}
	}
	return a
}

// Workload names one experiment workload: either a single benchmark in
// rate mode (4 copies) or a mix of 4 different benchmarks.
type Workload struct {
	Name    string
	Suite   string
	Parts   []Profile // 1 for rate mode, 4 for mixes
	RateRun bool
}

// Streams builds the per-core streams for the workload on `cores` cores.
func (w Workload) Streams(cores int) []*Stream {
	out := make([]*Stream, cores)
	for c := 0; c < cores; c++ {
		base := uint64(c) << 36 // disjoint address spaces per core
		if w.RateRun {
			out[c] = NewStream(w.Parts[0], base, int64(c)*7919)
		} else {
			out[c] = NewStream(w.Parts[c%len(w.Parts)], base, int64(c)*7919)
		}
	}
	return out
}

const (
	mb = 1 << 14 // lines in 1 MB
)

// profiles is the benchmark roster: 17 memory-intensive SPEC2006
// workloads, 6 GAP kernels (pr/cc/bc × twitter/web). APKI and locality
// parameters are calibrated to published characterizations; footprints
// are scaled to the 8 MB LLC of Table III (131072 lines).
var profiles = map[string]Profile{
	// SPECint
	"mcf":       {Name: "mcf", Suite: "SPECint", APKI: 55, WriteFrac: 0.25, FootprintLines: 24 * mb, StreamFrac: 0.10, PointerFrac: 0.55, HotFrac: 0.20},
	"omnetpp":   {Name: "omnetpp", Suite: "SPECint", APKI: 18, WriteFrac: 0.30, FootprintLines: 10 * mb, StreamFrac: 0.10, PointerFrac: 0.45, HotFrac: 0.30},
	"astar":     {Name: "astar", Suite: "SPECint", APKI: 9, WriteFrac: 0.25, FootprintLines: 6 * mb, StreamFrac: 0.10, PointerFrac: 0.50, HotFrac: 0.35},
	"gcc":       {Name: "gcc", Suite: "SPECint", APKI: 10, WriteFrac: 0.35, FootprintLines: 8 * mb, StreamFrac: 0.30, PointerFrac: 0.20, HotFrac: 0.40},
	"xalancbmk": {Name: "xalancbmk", Suite: "SPECint", APKI: 12, WriteFrac: 0.25, FootprintLines: 6 * mb, StreamFrac: 0.25, PointerFrac: 0.35, HotFrac: 0.35},
	"bzip2":     {Name: "bzip2", Suite: "SPECint", APKI: 6, WriteFrac: 0.35, FootprintLines: 12 * mb, StreamFrac: 0.50, PointerFrac: 0.05, HotFrac: 0.40},
	"gobmk":     {Name: "gobmk", Suite: "SPECint", APKI: 4, WriteFrac: 0.30, FootprintLines: 2 * mb, StreamFrac: 0.20, PointerFrac: 0.25, HotFrac: 0.50},

	// SPECfp
	"lbm":        {Name: "lbm", Suite: "SPECfp", APKI: 32, WriteFrac: 0.45, FootprintLines: 32 * mb, StreamFrac: 0.90, PointerFrac: 0.00, HotFrac: 0.10},
	"libquantum": {Name: "libquantum", Suite: "SPECfp", APKI: 26, WriteFrac: 0.25, FootprintLines: 24 * mb, StreamFrac: 0.95, PointerFrac: 0.00, HotFrac: 0.05},
	"milc":       {Name: "milc", Suite: "SPECfp", APKI: 22, WriteFrac: 0.35, FootprintLines: 28 * mb, StreamFrac: 0.60, PointerFrac: 0.05, HotFrac: 0.15},
	"soplex":     {Name: "soplex", Suite: "SPECfp", APKI: 24, WriteFrac: 0.20, FootprintLines: 16 * mb, StreamFrac: 0.40, PointerFrac: 0.20, HotFrac: 0.25},
	"bwaves":     {Name: "bwaves", Suite: "SPECfp", APKI: 19, WriteFrac: 0.30, FootprintLines: 28 * mb, StreamFrac: 0.80, PointerFrac: 0.00, HotFrac: 0.10},
	"GemsFDTD":   {Name: "GemsFDTD", Suite: "SPECfp", APKI: 20, WriteFrac: 0.35, FootprintLines: 26 * mb, StreamFrac: 0.70, PointerFrac: 0.00, HotFrac: 0.15},
	"leslie3d":   {Name: "leslie3d", Suite: "SPECfp", APKI: 15, WriteFrac: 0.30, FootprintLines: 20 * mb, StreamFrac: 0.75, PointerFrac: 0.00, HotFrac: 0.15},
	"sphinx3":    {Name: "sphinx3", Suite: "SPECfp", APKI: 13, WriteFrac: 0.10, FootprintLines: 10 * mb, StreamFrac: 0.45, PointerFrac: 0.10, HotFrac: 0.35},
	"cactusADM":  {Name: "cactusADM", Suite: "SPECfp", APKI: 8, WriteFrac: 0.35, FootprintLines: 14 * mb, StreamFrac: 0.65, PointerFrac: 0.00, HotFrac: 0.25},
	"zeusmp":     {Name: "zeusmp", Suite: "SPECfp", APKI: 7, WriteFrac: 0.30, FootprintLines: 16 * mb, StreamFrac: 0.70, PointerFrac: 0.00, HotFrac: 0.20},

	// GAP — pr/cc/bc on twitter (huge, poor locality) and web (smaller,
	// better locality: data lives mostly in LLC so counter contention
	// hurts, the paper's SGX_O-below-SGX anomaly).
	"pr-twitter": {Name: "pr-twitter", Suite: "GAP", APKI: 42, WriteFrac: 0.15, FootprintLines: 48 * mb, StreamFrac: 0.15, PointerFrac: 0.45, HotFrac: 0.15},
	"cc-twitter": {Name: "cc-twitter", Suite: "GAP", APKI: 36, WriteFrac: 0.20, FootprintLines: 40 * mb, StreamFrac: 0.15, PointerFrac: 0.40, HotFrac: 0.15},
	"bc-twitter": {Name: "bc-twitter", Suite: "GAP", APKI: 30, WriteFrac: 0.20, FootprintLines: 36 * mb, StreamFrac: 0.20, PointerFrac: 0.40, HotFrac: 0.15},
	// The web datasets' working sets nearly fit the LLC: data alone
	// caches, data+counters does not, so SGX_O's LLC counter caching
	// pushes the workload over the LRU capacity cliff (the paper's
	// SGX_O-below-SGX anomaly, §VI-A).
	"pr-web": {Name: "pr-web", Suite: "GAP", APKI: 24, WriteFrac: 0.15, FootprintLines: 30500, StreamFrac: 0.75, PointerFrac: 0.10, HotFrac: 0.40, HotLines: 2048, InstrScale: 8},
	"cc-web": {Name: "cc-web", Suite: "GAP", APKI: 20, WriteFrac: 0.20, FootprintLines: 30000, StreamFrac: 0.75, PointerFrac: 0.10, HotFrac: 0.40, HotLines: 2048, InstrScale: 8},
	"bc-web": {Name: "bc-web", Suite: "GAP", APKI: 17, WriteFrac: 0.20, FootprintLines: 29500, StreamFrac: 0.72, PointerFrac: 0.12, HotFrac: 0.40, HotLines: 2048, InstrScale: 10},
}

// mixRecipes are the 6 random 4-benchmark combinations.
var mixRecipes = [][4]string{
	{"mcf", "lbm", "sphinx3", "xalancbmk"},
	{"libquantum", "omnetpp", "milc", "astar"},
	{"soplex", "bwaves", "gcc", "bc-web"},
	{"GemsFDTD", "mcf", "leslie3d", "bzip2"},
	{"pr-twitter", "cactusADM", "soplex", "omnetpp"},
	{"cc-twitter", "lbm", "zeusmp", "sphinx3"},
}

// ByName returns a single benchmark profile.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: unknown benchmark %q", name)
	}
	return p, nil
}

// Names lists all single-benchmark profiles.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	return out
}

// Workloads returns the paper's 29-workload roster: 17 SPEC2006
// memory-intensive benchmarks (rate mode), 6 GAP kernels (rate mode),
// and 6 mixes.
func Workloads() []Workload {
	order := []string{
		// SPECint
		"mcf", "omnetpp", "astar", "gcc", "xalancbmk", "bzip2", "gobmk",
		// SPECfp
		"lbm", "libquantum", "milc", "soplex", "bwaves", "GemsFDTD",
		"leslie3d", "sphinx3", "cactusADM", "zeusmp",
		// GAP
		"pr-twitter", "pr-web", "cc-twitter", "cc-web", "bc-twitter", "bc-web",
	}
	var out []Workload
	for _, n := range order {
		p := profiles[n]
		out = append(out, Workload{Name: n, Suite: p.Suite, Parts: []Profile{p}, RateRun: true})
	}
	for i, recipe := range mixRecipes {
		var parts []Profile
		for _, n := range recipe {
			parts = append(parts, profiles[n])
		}
		out = append(out, Workload{
			Name:  fmt.Sprintf("mix%d", i+1),
			Suite: "MIX",
			Parts: parts,
		})
	}
	return out
}

// InstrBudget returns the per-core instruction count for the workload
// given a base budget, honoring the largest component InstrScale.
func (w Workload) InstrBudget(base uint64) uint64 {
	scale := 1.0
	for _, p := range w.Parts {
		if p.InstrScale > scale {
			scale = p.InstrScale
		}
	}
	return uint64(float64(base) * scale)
}
