package trace

import (
	"math"
	"testing"
)

func TestWorkloadRoster(t *testing.T) {
	ws := Workloads()
	if len(ws) != 29 {
		t.Fatalf("workload count = %d, want 29 (paper roster)", len(ws))
	}
	suites := map[string]int{}
	for _, w := range ws {
		suites[w.Suite]++
	}
	if suites["GAP"] != 6 {
		t.Errorf("GAP workloads = %d, want 6", suites["GAP"])
	}
	if suites["MIX"] != 6 {
		t.Errorf("MIX workloads = %d, want 6", suites["MIX"])
	}
	if suites["SPECint"]+suites["SPECfp"] != 17 {
		t.Errorf("SPEC workloads = %d, want 17", suites["SPECint"]+suites["SPECfp"])
	}
}

func TestWorkloadNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, w := range Workloads() {
		if seen[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("mcf")
	if err != nil || p.Name != "mcf" {
		t.Fatalf("ByName(mcf) = %+v, %v", p, err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
	if len(Names()) != 23 {
		t.Fatalf("Names() = %d entries, want 23", len(Names()))
	}
}

func TestAllWorkloadsMemoryIntensive(t *testing.T) {
	// The paper selects workloads with >1 access per 1000 instructions.
	for _, w := range Workloads() {
		for _, p := range w.Parts {
			if p.APKI <= 1 {
				t.Errorf("%s/%s: APKI %.1f not memory-intensive", w.Name, p.Name, p.APKI)
			}
			if p.FootprintLines == 0 {
				t.Errorf("%s/%s: zero footprint", w.Name, p.Name)
			}
			if p.StreamFrac+p.PointerFrac > 1 {
				t.Errorf("%s/%s: mixture fractions exceed 1", w.Name, p.Name)
			}
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	p, _ := ByName("mcf")
	s1 := NewStream(p, 0, 1)
	s2 := NewStream(p, 0, 1)
	for i := 0; i < 1000; i++ {
		if s1.Next() != s2.Next() {
			t.Fatalf("streams diverged at access %d", i)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	p, _ := ByName("mcf")
	s1 := NewStream(p, 0, 1)
	s2 := NewStream(p, 0, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Next().Addr == s2.Next().Addr {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("different seeds produced %d/100 identical addresses", same)
	}
}

func TestStreamStatistics(t *testing.T) {
	p, _ := ByName("lbm")
	s := NewStream(p, 0, 3)
	const n = 200000
	var gaps, writes, deps float64
	maxAddr := uint64(0)
	for i := 0; i < n; i++ {
		a := s.Next()
		gaps += float64(a.Gap)
		if a.Write {
			writes++
		}
		if a.Dependent {
			deps++
		}
		if a.Addr > maxAddr {
			maxAddr = a.Addr
		}
	}
	// Mean gap should be ~1000/APKI.
	wantGap := 1000.0 / p.APKI
	if got := gaps / n; math.Abs(got-wantGap)/wantGap > 0.1 {
		t.Errorf("mean gap %.1f, want ≈%.1f", got, wantGap)
	}
	if got := writes / n; math.Abs(got-p.WriteFrac) > 0.02 {
		t.Errorf("write fraction %.3f, want ≈%.2f", got, p.WriteFrac)
	}
	if maxAddr >= p.FootprintLines {
		t.Errorf("address %d beyond footprint %d", maxAddr, p.FootprintLines)
	}
	// lbm has no pointer component.
	if deps != 0 {
		t.Errorf("lbm produced %v dependent accesses", deps)
	}
}

func TestPointerWorkloadHasDependentLoads(t *testing.T) {
	p, _ := ByName("mcf")
	s := NewStream(p, 0, 4)
	deps := 0
	for i := 0; i < 10000; i++ {
		if s.Next().Dependent {
			deps++
		}
	}
	if deps < 2000 {
		t.Fatalf("mcf dependent loads = %d/10000, want ≳ pointer fraction", deps)
	}
}

func TestStreamingLocality(t *testing.T) {
	p, _ := ByName("libquantum")
	s := NewStream(p, 0, 5)
	sequential := 0
	prev := s.Next().Addr
	for i := 0; i < 10000; i++ {
		a := s.Next()
		if a.Addr == prev+1 {
			sequential++
		}
		prev = a.Addr
	}
	if sequential < 8500 {
		t.Fatalf("libquantum sequential pairs = %d/10000, want ≳ 0.9", sequential)
	}
}

func TestRateModeStreamsDisjoint(t *testing.T) {
	w := Workloads()[0]
	streams := w.Streams(4)
	if len(streams) != 4 {
		t.Fatalf("got %d streams", len(streams))
	}
	bases := map[uint64]bool{}
	for _, s := range streams {
		a := s.Next()
		base := a.Addr >> 36
		if bases[base] {
			t.Fatal("two cores share an address-space base in rate mode")
		}
		bases[base] = true
	}
}

func TestMixStreamsUseDifferentProfiles(t *testing.T) {
	var mix Workload
	for _, w := range Workloads() {
		if w.Suite == "MIX" {
			mix = w
			break
		}
	}
	if len(mix.Parts) != 4 {
		t.Fatalf("mix has %d parts, want 4", len(mix.Parts))
	}
	streams := mix.Streams(4)
	names := map[string]bool{}
	for _, s := range streams {
		names[s.Profile().Name] = true
	}
	if len(names) != 4 {
		t.Fatalf("mix cores run %d distinct profiles, want 4", len(names))
	}
}

func TestNewMixStreamInterleaves(t *testing.T) {
	p1, _ := ByName("mcf")
	p2, _ := ByName("lbm")
	s := NewMixStream("m", []Profile{p1, p2}, 0, 9)
	// Alternating accesses come from alternating address bases.
	a1 := s.Next()
	a2 := s.Next()
	if a1.Addr>>34 == a2.Addr>>34 {
		t.Fatal("mix components share an address region")
	}
}
