package trace

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestTraceRoundTrip(t *testing.T) {
	p, _ := ByName("mcf")
	src := NewStream(p, 0, 5)
	var buf bytes.Buffer
	const n = 5000
	if err := WriteTrace(&buf, "mcf", n, src); err != nil {
		t.Fatal(err)
	}
	name, accs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "mcf" || len(accs) != n {
		t.Fatalf("name=%q len=%d", name, len(accs))
	}
	// The same stream regenerated must match the recording exactly.
	ref := NewStream(p, 0, 5)
	for i, a := range accs {
		if want := ref.Next(); a != want {
			t.Fatalf("record %d = %+v, want %+v", i, a, want)
		}
	}
}

func TestTraceRoundTripProperty(t *testing.T) {
	f := func(raw []uint32, writes []bool) bool {
		if len(raw) == 0 {
			return true
		}
		accs := make([]Access, len(raw))
		for i, r := range raw {
			accs[i] = Access{
				Gap:       uint64(r%1000) + 1,
				Addr:      uint64(r) * 7,
				Write:     i < len(writes) && writes[i],
				Dependent: r%5 == 0,
			}
		}
		rp, err := NewReplay("x", accs)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteTrace(&buf, "x", len(accs), rp); err != nil {
			return false
		}
		_, got, err := ReadTrace(&buf)
		if err != nil || len(got) != len(accs) {
			return false
		}
		for i := range accs {
			if got[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceCompression(t *testing.T) {
	// Streaming workloads should encode near 3 bytes/access.
	p, _ := ByName("libquantum")
	src := NewStream(p, 0, 1)
	var buf bytes.Buffer
	const n = 10000
	if err := WriteTrace(&buf, "libquantum", n, src); err != nil {
		t.Fatal(err)
	}
	perAccess := float64(buf.Len()) / n
	if perAccess > 6 {
		t.Fatalf("%.1f bytes/access — delta encoding broken", perAccess)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, _, err := ReadTrace(bytes.NewReader([]byte("not a trace file"))); err == nil {
		t.Fatal("accepted garbage")
	}
	if _, _, err := ReadTrace(bytes.NewReader(nil)); err == nil {
		t.Fatal("accepted empty input")
	}
	// Valid magic, truncated body.
	var buf bytes.Buffer
	buf.Write(traceMagic[:])
	buf.WriteByte(3)
	buf.WriteString("ab") // claims 3 name bytes, provides 2
	if _, _, err := ReadTrace(&buf); err == nil {
		t.Fatal("accepted truncated header")
	}
}

func TestWriteTraceValidation(t *testing.T) {
	p, _ := ByName("mcf")
	if err := WriteTrace(&bytes.Buffer{}, "x", 0, NewStream(p, 0, 1)); err == nil {
		t.Fatal("accepted zero-length recording")
	}
}

func TestReplayLoops(t *testing.T) {
	accs := []Access{
		{Gap: 1, Addr: 10},
		{Gap: 2, Addr: 20, Write: true},
		{Gap: 3, Addr: 30, Dependent: true},
	}
	rp, err := NewReplay("loop", accs)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Name() != "loop" || rp.Len() != 3 {
		t.Fatalf("name=%q len=%d", rp.Name(), rp.Len())
	}
	for round := 0; round < 4; round++ {
		for i := range accs {
			if got := rp.Next(); got != accs[i] {
				t.Fatalf("round %d pos %d: %+v", round, i, got)
			}
		}
	}
}

func TestNewReplayRejectsEmpty(t *testing.T) {
	if _, err := NewReplay("x", nil); err == nil {
		t.Fatal("accepted empty recording")
	}
}

func TestZigzag(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<62 - 1, -(1 << 62)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag round trip: %d -> %d", v, got)
		}
	}
}
