// Package synergy is a from-scratch Go reproduction of "SYNERGY:
// Rethinking Secure-Memory Design for Error-Correcting Memories"
// (Saileshwar, Nair, Ramrakhyani, Elsasser, Qureshi — HPCA 2018).
//
// The repository contains three cooperating systems:
//
//   - A byte-accurate functional engine (internal/core and the
//     substrates under internal/gmac, internal/ctrenc,
//     internal/integrity, internal/dimm, internal/ecc) implementing the
//     paper's design: counter-mode encryption, 64-bit Carter–Wegman
//     MACs co-located with data in the ECC chip of a 9-chip ECC-DIMM,
//     a Bonsai counter tree, and a RAID-3 reconstruction engine that
//     corrects any single-chip failure.
//
//   - A USIMM-style performance simulator (internal/cpu,
//     internal/cache, internal/dram, internal/secmem, internal/trace,
//     internal/energy) that regenerates the paper's performance
//     figures for SGX, SGX_O, Synergy, IVEC, LOT-ECC and Chipkill.
//
//   - A FAULTSIM-style reliability Monte Carlo
//     (internal/reliability) that regenerates the paper's Fig. 11.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and the benchmarks in bench_test.go for
// one regeneration target per table/figure.
package synergy
