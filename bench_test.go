// One benchmark per table/figure of the paper's evaluation. Each runs
// the experiment at a benchmark-friendly instruction budget and reports
// the headline numbers the paper quotes as custom metrics, so
//
//	go test -bench=Figure -benchmem
//
// regenerates the whole evaluation. cmd/synergy-sim and
// cmd/synergy-faultsim produce the full per-workload tables.
package synergy_test

import (
	"strings"
	"testing"

	"synergy/internal/core"
	"synergy/internal/experiments"
)

// benchOptions keeps figure benchmarks to a few seconds each while
// running the full 29-workload roster.
func benchOptions() experiments.Options {
	return experiments.Options{BaseInstr: 250_000}
}

// reportSummary attaches a figure's headline numbers to the benchmark.
// Metric units may not contain whitespace; summary keys that do are
// reported with dashes instead.
func reportSummary(b *testing.B, fig experiments.Figure, keys ...string) {
	b.Helper()
	for _, k := range keys {
		if v, ok := fig.Summary[k]; ok {
			b.ReportMetric(v, strings.ReplaceAll(k, " ", "-"))
		}
	}
}

// BenchmarkFigure6 — performance of SGX, SGX_O and Non-Secure
// normalized to SGX_O (paper: Non-Secure 2.12x, SGX 0.70x).
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure6()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "NonSecure/SGX_O", "SGX/SGX_O")
	}
}

// BenchmarkFigure8 — IPC of SGX, SGX_O, Synergy normalized to SGX_O
// (paper: Synergy 1.20x gmean).
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "Synergy/SGX_O", "SGX/SGX_O")
	}
}

// BenchmarkFigure9 — memory traffic by category normalized to SGX_O
// (paper: Synergy reduces overall accesses by 18%).
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "Synergy/overall", "SGX/overall", "Synergy/reads", "Synergy/writes")
	}
}

// BenchmarkFigure10 — power/performance/energy/EDP normalized to SGX_O
// (paper: Synergy EDP 0.69x).
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure10()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "Synergy/edp", "SGX/edp", "Synergy/energy")
	}
}

// BenchmarkFigure11 — probability of system failure over 7 years under
// SECDED / Chipkill / Synergy (paper: 37x and 185x vs SECDED).
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := experiments.Figure11(150_000, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		secded, chipkill, synergy := fig.Summary["SECDED"], fig.Summary["Chipkill"], fig.Summary["Synergy"]
		if chipkill > 0 {
			b.ReportMetric(secded/chipkill, "SECDED/Chipkill")
		}
		if synergy > 0 {
			b.ReportMetric(secded/synergy, "SECDED/Synergy")
		}
	}
}

// BenchmarkFigure12 — sensitivity to 2/4/8 memory channels (paper:
// Synergy's gain shrinks from +20% to +6%).
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure12()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "Synergy@2ch", "Synergy@4ch", "Synergy@8ch")
	}
}

// BenchmarkFigure13 — monolithic vs split counters (paper: +20% vs +23%).
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure13()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "monolithic", "split")
	}
}

// BenchmarkFigure14 — LLC counter caching vs dedicated-only (paper:
// +20% vs +13%).
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure14()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "dedicated+LLC", "dedicated only")
	}
}

// BenchmarkFigure16 — IVEC vs Synergy performance and EDP (paper: IVEC
// 0.74x perf / 1.90x EDP).
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure16()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "IVEC/perf", "IVEC/edp", "Synergy/perf", "Synergy/edp")
	}
}

// BenchmarkFigure17 — LOT-ECC (±write coalescing) vs Synergy (paper:
// LOT-ECC 0.80–0.85x).
func BenchmarkFigure17(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.NewRunner(benchOptions())
		fig, err := r.Figure17()
		if err != nil {
			b.Fatal(err)
		}
		reportSummary(b, fig, "LOT-ECC/perf", "LOT-ECC+WC/perf", "Synergy/perf")
	}
}

// BenchmarkCorrectionLatency measures the functional engine's Fig. 5
// reconstruction path: reads under an active whole-chip fault, before
// the scoreboard engages (worst case) — the latency §IV-A's mitigation
// addresses.
func BenchmarkCorrectionLatency(b *testing.B) {
	mem, err := core.New(core.Config{DataLines: 1024, FaultThreshold: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, core.LineSize)
	for i := uint64(0); i < 1024; i++ {
		if err := mem.Write(i, buf); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := mem.Module().InjectPermanent(2, 0, mem.Module().Lines()-1, [8]byte{0x77}); err != nil {
		b.Fatal(err)
	}
	before := mem.Stats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mem.Read(uint64(i)%1024, buf); err != nil {
			b.Fatal(err)
		}
	}
	after := mem.Stats()
	if reads := after.Reads - before.Reads; reads > 0 {
		b.ReportMetric(float64(after.MACComputations-before.MACComputations)/float64(reads), "MACs/read")
	}
}
