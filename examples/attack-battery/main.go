// Attack battery: run the paper's §II-A adversary model against the
// functional engine and print each scenario's verdict — corrections for
// single-chip tampering, fail-closed detection for everything else,
// and never silent corruption.
//
//	go run ./examples/attack-battery
package main

import (
	"fmt"
	"log"
	"os"

	"synergy/internal/adversary"
)

func main() {
	results, err := adversary.RunAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Attack battery against the Synergy functional engine:")
	failed := 0
	for _, r := range results {
		status := "ok"
		if !r.OK {
			status = "UNEXPECTED"
			failed++
		}
		fmt.Printf("  %-50s %-10v [%s]\n", r.Scenario, r.Outcome, status)
	}
	if failed > 0 {
		fmt.Printf("\n%d scenarios off-expectation\n", failed)
		os.Exit(1)
	}
	fmt.Println("\nAll scenarios behaved as the paper's security argument requires:")
	fmt.Println("single-chip tampering corrected, everything else detected, nothing silent.")
}
