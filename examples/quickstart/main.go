// Quickstart: create a Synergy secure memory through the public facade,
// write and read data, and watch the engine transparently correct a
// chip error.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"synergy"
)

func main() {
	// A small Synergy memory: 256 cachelines (16 KB) of protected data
	// on a simulated 9-chip ECC-DIMM. Encryption and MAC keys default
	// for the demo; production use supplies 16-byte secrets. Config
	// adds Ranks for multi-rank arrays; the default is a single rank.
	mem, err := synergy.New(synergy.Config{DataLines: 256})
	if err != nil {
		log.Fatal(err)
	}

	// Write a cacheline. Under the hood: the encryption counter
	// increments, the line is encrypted (AES counter mode), a 64-bit
	// GMAC is computed and stored in the ECC chip alongside the data,
	// the integrity-tree path is resealed, and the 9-chip parity is
	// updated.
	line := make([]byte, synergy.LineSize)
	copy(line, []byte("synergy: MAC in the ECC chip, parity for correction"))
	if err := mem.Write(7, line); err != nil {
		log.Fatal(err)
	}

	// Read it back: the integrity tree is traversed and the MAC
	// verified before the plaintext is returned.
	buf := make([]byte, synergy.LineSize)
	info, err := mem.Read(7, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back: %q\n", buf[:52])
	fmt.Printf("corrected: %v (clean read)\n\n", info.Corrected)

	// Now a DRAM chip corrupts its slice of the line (a multi-bit
	// error confined to chip 3 — more than SECDED could ever fix).
	// Raw hardware access goes through the rank; a default Array has
	// one, and fault injection is caller-synchronized.
	rank := mem.Rank(0)
	addr := rank.Layout().DataAddr(7)
	if err := rank.Module().InjectTransient(addr, 3, [8]byte{0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00}); err != nil {
		log.Fatal(err)
	}

	// The next read detects the error via the MAC (Fig. 5a), rebuilds
	// chip 3 from the 9-chip parity (Fig. 5b), verifies the repair
	// against the MAC, and returns the original data.
	info, err = mem.Read(7, buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after chip error, read back: %q\n", buf[:52])
	fmt.Printf("corrected: %v, faulty chip identified: %v, MAC recomputations: %d\n",
		info.Corrected, info.FaultyChips, info.MACRecomputations)

	s := mem.Stats()
	fmt.Printf("\nengine stats: %d reads, %d writes, %d corrections, %d MAC computations\n",
		s.Reads, s.Writes, s.CorrectionEvents, s.MACComputations)
}
