// DoS-detection demo (paper §IV-B): an adversary cannot break Synergy's
// correctness by planting correctable errors, but can try to burn MAC
// recomputation latency. The memory controller's corrected-error log
// plus statistical analysis separates that from a genuine hardware
// fault.
//
//	go run ./examples/dos-detection
package main

import (
	"fmt"
	"log"

	"synergy/internal/core"
)

func main() {
	fmt.Println("-- scenario 1: a real chip goes bad --")
	natural()
	fmt.Println("\n-- scenario 2: an adversary plants correctable errors --")
	adversarial()
}

func natural() {
	mem, err := core.New(core.Config{DataLines: 128, FaultThreshold: 1 << 30})
	if err != nil {
		log.Fatal(err)
	}
	line := make([]byte, core.LineSize)
	for i := uint64(0); i < 64; i++ {
		mem.Write(i, line)
	}
	// Chip 3 fails for good.
	mem.Module().InjectPermanent(3, 0, mem.Module().Lines()-1, [8]byte{0x18})
	buf := make([]byte, core.LineSize)
	for i := uint64(0); i < 64; i++ {
		if i%8 == 3 {
			continue
		}
		if _, err := mem.Read(i, buf); err != nil {
			log.Fatal(err)
		}
	}
	report(mem)
}

func adversarial() {
	mem, err := core.New(core.Config{DataLines: 128})
	if err != nil {
		log.Fatal(err)
	}
	line := make([]byte, core.LineSize)
	for i := uint64(0); i < 32; i++ {
		mem.Write(i, line)
	}
	// The adversary flips bits wherever the bus allows — across chips —
	// each flip individually correctable, each costing reconstruction
	// work.
	buf := make([]byte, core.LineSize)
	for k := 0; k < 24; k++ {
		target := uint64(k % 32)
		chip := k % 9
		mem.Module().InjectTransient(mem.Layout().DataAddr(target), chip, [8]byte{0x80})
		if _, err := mem.Read(target, buf); err != nil {
			log.Fatal(err)
		}
	}
	report(mem)
}

func report(mem *core.Memory) {
	s := mem.Stats()
	a := mem.ErrorLog().Analyze(s.Reads + s.Writes)
	fmt.Printf("corrections logged: %d  (%.0f per M accesses)\n",
		mem.ErrorLog().Total(), a.RatePerMAccess)
	fmt.Printf("per-chip counts:    %v\n", mem.ErrorLog().ByChip())
	fmt.Printf("dominant chip:      %d (%.0f%% of corrections)\n",
		a.DominantChip, a.DominantShare*100)
	fmt.Printf("assessment:         %v\n", a.Assessment)
}
