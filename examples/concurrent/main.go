// Concurrent serving demo: a 4-rank Synergy Array under parallel
// clients. Each rank is an independent protection domain with its own
// lock (paper §III-A, Table III), so the shard router serves requests
// to different ranks fully in parallel, and batched I/O groups lines by
// rank to pay one lock acquisition per rank per batch.
//
//	go run ./examples/concurrent
//	go run ./examples/concurrent -clients 8 -ops 20000
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"synergy"
)

func main() {
	clients := flag.Int("clients", 2*runtime.GOMAXPROCS(0), "concurrent client goroutines")
	ops := flag.Int("ops", 10_000, "total line reads per phase")
	flag.Parse()

	const ranks = 4
	const dataLines = 4096
	arr, err := synergy.New(synergy.Config{DataLines: dataLines, Ranks: ranks})
	if err != nil {
		log.Fatal(err)
	}

	// Populate with batched writes: one WriteBatch per 256-line chunk
	// fans each chunk out across all four ranks.
	const chunk = 256
	src := make([]byte, chunk*synergy.LineSize)
	lines := make([]uint64, chunk)
	for base := uint64(0); base < dataLines; base += chunk {
		for k := range lines {
			lines[k] = base + uint64(k)
			src[k*synergy.LineSize] = byte(lines[k])
		}
		if err := arr.WriteBatch(lines, src); err != nil {
			log.Fatal(err)
		}
	}

	run := func(g int) float64 {
		per := *ops / g
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < g; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				buf := make([]byte, synergy.LineSize)
				// Pin each client to one rank (lines ≡ w mod ranks) so
				// rank locks shard instead of contend.
				i := uint64(w % ranks)
				for k := 0; k < per; k++ {
					if _, err := arr.Read(i, buf); err != nil {
						log.Fatal(err)
					}
					i += ranks
					if i >= dataLines {
						i = uint64(w % ranks)
					}
				}
			}(w)
		}
		wg.Wait()
		return float64(g*per) / time.Since(start).Seconds()
	}

	fmt.Printf("4-rank Array, %d protected lines, GOMAXPROCS=%d\n\n", dataLines, runtime.GOMAXPROCS(0))
	base := run(1)
	fmt.Printf("%8d client : %12.0f lines/sec\n", 1, base)
	for _, g := range []int{4, *clients} {
		if g <= 1 {
			continue
		}
		rate := run(g)
		fmt.Printf("%8d clients: %12.0f lines/sec (%.2fx)\n", g, rate, rate/base)
	}

	// A background scrub shares the array with foreground traffic: the
	// per-line rank locks interleave the two.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := arr.Scrub(context.Background()); err != nil {
			log.Fatal(err)
		}
	}()
	foreground := run(ranks)
	wg.Wait()
	fmt.Printf("\nwith concurrent full-array scrub: %12.0f lines/sec foreground\n", foreground)

	s := arr.Stats()
	fmt.Printf("\naggregate stats: %d reads, %d writes, %d corrections, %d attacks\n",
		s.Reads, s.Writes, s.CorrectionEvents, s.AttacksDeclared)
}
