// Live-observability walkthrough: an Array serving seeded traffic
// while a chip fault is injected and corrected, observed entirely from
// the outside through the telemetry surface — a custom Sink streaming
// correction events, and the JSON snapshot endpoint polled for a
// Fig. 5-style per-stage latency breakdown of the secure read.
//
//	go run ./examples/observability
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"sort"
	"time"

	"synergy"
)

// logSink streams correction and poison events as they happen — the
// kind of hook a fleet-management agent would attach.
type logSink struct {
	synergy.TelemetryBaseSink
}

func (logSink) OnCorrection(e synergy.CorrectionEvent) {
	fmt.Printf("  [sink] corrected rank %d chip %d (%s line %#x)\n", e.Rank, e.Chip, e.Region, e.Line)
}

func (logSink) OnPoison(e synergy.PoisonEvent) {
	verb := "poisoned"
	if e.Healed {
		verb = "healed"
	}
	fmt.Printf("  [sink] %s rank %d line %#x\n", verb, e.Rank, e.Line)
}

func main() {
	// Sample every read so a short demo fills the stage histograms;
	// production uses the default 1-in-64 sampling.
	reg := synergy.NewTelemetry(synergy.TelemetrySampleEvery(1))
	reg.Attach(logSink{})
	mem, err := synergy.New(synergy.Config{DataLines: 4096, Ranks: 2, Telemetry: reg})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := synergy.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("metrics endpoint: http://%s/metrics\n\n", srv.Addr)

	line := make([]byte, synergy.LineSize)
	for i := uint64(0); i < 4096; i++ {
		line[0] = byte(i)
		if err := mem.Write(i, line); err != nil {
			log.Fatal(err)
		}
	}
	before := poll(srv.Addr)

	// Traffic with a fault in the middle: a single-chip corruption the
	// RAID-3 layer corrects inline, then a two-chip corruption that
	// fails closed and poisons the line until a write heals it. Array
	// lines stripe round-robin over ranks, so array line L lives at
	// rank L%ranks, local line L/ranks — both faults land on rank 0.
	fmt.Println("driving 20k reads with injected faults:")
	m := mem.Rank(0)
	var mask [8]byte
	mask[3] = 0x80
	if err := m.InjectTransient(m.Layout().DataAddr(100/2), 2, mask); err != nil {
		log.Fatal(err)
	}
	if err := m.InjectTransients(m.Layout().DataAddr(200/2), []synergy.ChipFault{
		{Chip: 1, Mask: mask}, {Chip: 5, Mask: mask},
	}); err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 20_000; i++ {
		addr := i % 4096
		if _, err := mem.Read(addr, line); err != nil {
			if addr != 200 {
				log.Fatal(err)
			}
			if addr == 200 && i == 200 {
				fmt.Printf("  read %#x failed closed: %v\n", addr, err)
			}
		}
	}
	line[0] = 0xAA
	if err := mem.Write(200, line); err != nil { // heal the poisoned line
		log.Fatal(err)
	}

	after := poll(srv.Addr)
	report(after.Sub(before), after.Elapsed(before))
}

// poll fetches the JSON snapshot over HTTP, exactly as synergy-top or
// any external collector would.
func poll(addr string) synergy.TelemetrySnapshot {
	resp, err := http.Get("http://" + addr + "/metrics.json")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var snap synergy.TelemetrySnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	return snap
}

// report prints the windowed delta: op rates and the per-stage read
// latency breakdown (the live analogue of the paper's Fig. 5).
func report(d synergy.TelemetrySnapshot, elapsed time.Duration) {
	read := d.Ops["read"]
	fmt.Printf("\nwindow: %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("reads: %d (%d failed closed), mean %v, p99 %v\n",
		read.Count, read.Errors, read.Latency.Mean(), read.Latency.Quantile(0.99))

	names := make([]string, 0, len(d.Stages))
	var total time.Duration
	for name, st := range d.Stages {
		if st.Count > 0 {
			names = append(names, name)
			total += time.Duration(st.Count) * st.Mean()
		}
	}
	sort.Strings(names)
	fmt.Println("\nsecure-read stage breakdown (sampled):")
	for _, name := range names {
		st := d.Stages[name]
		share := float64(time.Duration(st.Count)*st.Mean()) / float64(total) * 100
		fmt.Printf("  %-14s %5.1f%%  mean %v\n", name, share, st.Mean())
	}

	for _, r := range d.Ranks {
		var corr uint64
		for _, n := range r.Corrections {
			corr += n
		}
		if corr+r.Poisoned+r.Healed+r.FailClosed == 0 {
			continue
		}
		fmt.Printf("\nrank %d: %d corrections (by chip %v), %d poisoned, %d healed, %d fail-closed\n",
			r.Rank, corr, r.Corrections, r.Poisoned, r.Healed, r.FailClosed)
	}
}
