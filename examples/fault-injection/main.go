// Fault-injection walkthrough of the paper's error scenarios (Fig. 7):
// errors in data, MAC, counter, tree and parity cachelines; the
// overlapping data+parity chip failure that needs ParityP; a whole-chip
// permanent failure with the §IV-A scoreboard; the fail-closed attack
// cases; and the degraded-mode lifecycle that follows them — poison
// fast-fail, a patrol scrub that logs-and-continues, and chip
// replacement via RepairChip (DESIGN.md §10).
//
//	go run ./examples/fault-injection
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"synergy/internal/core"
	"synergy/internal/dimm"
)

func main() {
	mem, err := core.New(core.Config{DataLines: 512, FaultThreshold: 3})
	if err != nil {
		log.Fatal(err)
	}
	want := make(map[uint64][]byte)
	for i := uint64(0); i < 512; i++ {
		line := make([]byte, core.LineSize)
		for b := range line {
			line[b] = byte(i) ^ byte(b)
		}
		if err := mem.Write(i, line); err != nil {
			log.Fatal(err)
		}
		want[i] = line
	}
	lay := mem.Layout()

	check := func(scenario string, line uint64) core.ReadInfo {
		buf := make([]byte, core.LineSize)
		info, err := mem.Read(line, buf)
		if err != nil {
			log.Fatalf("%s: %v", scenario, err)
		}
		if !bytes.Equal(buf, want[line]) {
			log.Fatalf("%s: data mismatch", scenario)
		}
		fmt.Printf("%-42s corrected=%v chips=%v parityP=%v recomputes=%d\n",
			scenario, info.Corrected, info.FaultyChips, info.UsedParityP, info.MACRecomputations)
		return info
	}

	fmt.Println("-- Fig. 7 scenario D: data-cacheline errors --")
	mem.Module().InjectTransient(lay.DataAddr(10), 2, [8]byte{0xDE, 0xAD, 0xBE, 0xEF})
	check("data chip 2 corrupted", 10)
	mem.Module().InjectTransient(lay.DataAddr(11), dimm.ECCChip, [8]byte{0xFF})
	check("MAC chip corrupted", 11)

	fmt.Println("\n-- Fig. 7 scenarios B/C: counter and tree errors --")
	// Flush the on-chip metadata cache so the walk actually visits the
	// corrupted memory copies (a warm cache would mask them until
	// eviction — which is itself correct behavior).
	ctrAddr, slot := lay.CounterAddr(20)
	mem.Module().InjectTransient(ctrAddr, slot, [8]byte{0x01, 0x02})
	mem.FlushNodeCache()
	check("encryption-counter chip corrupted", 20)
	treeAddr := lay.TreeAddr(0, 0)
	mem.Module().InjectTransient(treeAddr, 5, [8]byte{0x42})
	mem.FlushNodeCache()
	check("integrity-tree chip corrupted", 0)

	fmt.Println("\n-- overlapping data+parity failure (needs ParityP) --")
	pAddr, pslot := lay.ParityAddr(33)
	mem.Module().InjectTransient(lay.DataAddr(33), pslot, [8]byte{0x5A})
	mem.Module().InjectTransient(pAddr, pslot, [8]byte{0xC3})
	info := check("data chip + its parity slot corrupted", 33)
	if !info.UsedParityP {
		log.Fatal("expected the parity-of-parities path")
	}

	fmt.Println("\n-- permanent whole-chip failure + scoreboard (§IV-A) --")
	mem.Module().InjectPermanent(4, 0, mem.Module().Lines()-1, [8]byte{0x3C})
	for pass := 0; pass < 4; pass++ {
		for _, line := range []uint64{1, 2, 3, 5, 6} {
			buf := make([]byte, core.LineSize)
			if _, err := mem.Read(line, buf); err != nil {
				log.Fatalf("permanent fault pass %d line %d: %v", pass, line, err)
			}
			if !bytes.Equal(buf, want[line]) {
				log.Fatalf("permanent fault: wrong data on line %d", line)
			}
		}
	}
	fmt.Printf("scoreboard condemned chip: %d (injected: 4)\n", mem.KnownBadChip())
	buf := make([]byte, core.LineSize)
	ri, _ := mem.Read(1, buf)
	fmt.Printf("steady-state read: preemptive=%v (1 MAC computation, like the baseline)\n", ri.Preemptive)

	fmt.Println("\n-- uncorrectable patterns fail closed (attack declared) --")
	mem2, _ := core.New(core.Config{DataLines: 64})
	line := make([]byte, core.LineSize)
	mem2.Write(5, line)
	mem2.Module().InjectTransient(mem2.Layout().DataAddr(5), 1, [8]byte{1})
	mem2.Module().InjectTransient(mem2.Layout().DataAddr(5), 6, [8]byte{2})
	if _, err := mem2.Read(5, buf); errors.Is(err, core.ErrAttack) {
		fmt.Println("two-chip corruption -> ErrAttack (no silent data corruption)")
	} else {
		log.Fatalf("expected ErrAttack, got %v", err)
	}

	fmt.Println("\n-- poison lifecycle: fast-fail, then heal by write --")
	// The attacked line is now poisoned: re-reads fail fast with
	// ErrPoisoned instead of re-running the 16-attempt reconstruction.
	if _, err := mem2.Read(5, buf); !errors.Is(err, core.ErrPoisoned) {
		log.Fatalf("expected ErrPoisoned on re-read, got %v", err)
	}
	fmt.Printf("re-read -> ErrPoisoned (fast-fail), poisoned lines: %v\n", mem2.Poisoned())
	// A write regenerates ciphertext, MAC and parity: the line is clean.
	if err := mem2.Write(5, line); err != nil {
		log.Fatal(err)
	}
	if _, err := mem2.Read(5, buf); err != nil {
		log.Fatalf("healed line still failing: %v", err)
	}
	fmt.Printf("write re-seals the line, poisoned lines: %v\n", mem2.Poisoned())

	fmt.Println("\n-- patrol scrub: logs and continues past uncorrectables --")
	// One correctable fault on line 7, one uncorrectable on line 9.
	mem2.Module().InjectTransient(mem2.Layout().DataAddr(7), 3, [8]byte{0x70})
	mem2.Module().InjectTransient(mem2.Layout().DataAddr(9), 0, [8]byte{3})
	mem2.Module().InjectTransient(mem2.Layout().DataAddr(9), 5, [8]byte{4})
	rep, err := mem2.Scrub(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrub report: scanned=%d corrected=%d poisoned=%v\n",
		rep.Scanned, rep.Corrected, rep.Poisoned)
	mem2.Write(9, line) // heal the poisoned line for the scrubber demo

	// The background scrubber runs the same pass on a tick, resuming
	// interrupted passes from per-rank cursors. (Array wraps one or
	// more ranks; a single Memory is wrapped the same way here.)
	arr, err := core.NewArray(core.Config{DataLines: 256, Ranks: 2})
	if err != nil {
		log.Fatal(err)
	}
	for i := uint64(0); i < 256; i++ {
		arr.Write(i, line)
	}
	scr := arr.StartScrubber(context.Background(), 2*time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	scr.Stop()
	fmt.Printf("background scrubber: %d full passes in 20ms\n", scr.Passes())

	fmt.Println("\n-- chip replacement: RepairChip restores full speed --")
	// mem still has the whole-chip permanent fault on chip 4 and the
	// scoreboard condemnation. RepairChip models swapping the chip:
	// clear its faults, re-verify every line (MAC-checked — a blind
	// parity rebuild would corrupt lines with a second fault), rebuild
	// the parity region, reset the scoreboard.
	if err := mem.RepairChip(4); err != nil {
		log.Fatal(err)
	}
	ri, _ = mem.Read(1, buf)
	fmt.Printf("after RepairChip: knownBad=%d preemptive=%v corrected=%v\n",
		mem.KnownBadChip(), ri.Preemptive, ri.Corrected)

	s := mem.Stats()
	fmt.Printf("\nengine stats: corrections=%d reconstruction attempts=%d parityP uses=%d preemptive=%d\n",
		s.CorrectionEvents, s.ReconstructionAttempts, s.ParityPUses, s.PreemptiveFixes)
	fmt.Printf("degraded-mode stats: poisoned=%d fast-fails=%d healed=%d chip repairs=%d\n",
		s.LinesPoisoned, s.PoisonFastFails, s.LinesHealed, s.ChipRepairs)
}
