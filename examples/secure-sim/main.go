// Secure-sim: a small performance comparison across secure-memory
// designs on one workload, showing where Synergy's speedup comes from
// (the removed MAC traffic) — a miniature of the paper's Fig. 8/9.
//
//	go run ./examples/secure-sim
//	go run ./examples/secure-sim -workload lbm -instr 2000000
package main

import (
	"flag"
	"fmt"
	"log"

	"synergy/internal/cpu"
	"synergy/internal/dram"
	"synergy/internal/secmem"
	"synergy/internal/stats"
	"synergy/internal/trace"
)

func main() {
	name := flag.String("workload", "mcf", "workload name (see synergy-trace for the roster)")
	instr := flag.Uint64("instr", 1_000_000, "instructions per core")
	flag.Parse()

	var w trace.Workload
	found := false
	for _, cand := range trace.Workloads() {
		if cand.Name == *name {
			w, found = cand, true
			break
		}
	}
	if !found {
		log.Fatalf("unknown workload %q", *name)
	}

	designs := []secmem.Design{secmem.NonSecure, secmem.SGX, secmem.SGXO, secmem.Synergy}
	results := make([]cpu.Result, len(designs))
	var baseIPC float64
	for i, d := range designs {
		hier, err := secmem.New(secmem.DefaultConfig(d))
		if err != nil {
			log.Fatal(err)
		}
		mem, err := dram.New(dram.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		cfg := cpu.DefaultConfig()
		cfg.InstrPerCore = w.InstrBudget(*instr)
		res, err := cpu.Run(cfg, w, hier, mem)
		if err != nil {
			log.Fatal(err)
		}
		results[i] = res
		if d == secmem.SGXO {
			baseIPC = res.IPC
		}
	}
	tbl := stats.NewTable("design", "IPC", "vs SGX_O", "DRAM acc/1k-instr", "MAC acc", "parity acc")
	for i, d := range designs {
		res := results[i]
		tr := res.Traffic
		mac := tr.Reads[secmem.CatMAC] + tr.Writes[secmem.CatMAC]
		par := tr.Reads[secmem.CatParity] + tr.Writes[secmem.CatParity]
		tbl.AddRow(d.String(), res.IPC, res.IPC/baseIPC, res.APKI(), mac, par)
	}
	fmt.Printf("Workload %s, 4 cores rate mode, Table III system:\n%s", w.Name, tbl)
	fmt.Println("\nSynergy removes the MAC column entirely (the MAC rides with data")
	fmt.Println("in the ECC chip) at the cost of parity writes — the paper's Fig. 9.")
}
