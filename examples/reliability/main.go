// Reliability demo: a miniature of Fig. 11 — Monte Carlo lifetime
// simulation comparing SECDED, Chipkill and Synergy under the Table I
// fault model, plus a functional end-to-end demonstration that the
// reliability the Monte Carlo credits to Synergy actually holds on the
// byte-accurate engine.
//
//	go run ./examples/reliability
package main

import (
	"bytes"
	"fmt"
	"log"

	"synergy/internal/core"
	"synergy/internal/reliability"
	"synergy/internal/stats"
)

func main() {
	fmt.Println("-- Monte Carlo (FAULTSIM-style), 7-year lifetime, Table I rates --")
	cfg := reliability.DefaultConfig()
	cfg.Trials = 100_000
	// The engine shards trials across GOMAXPROCS workers; per-trial
	// seeding keeps the table identical for any worker count, and all
	// policies see the same fault histories.
	results, err := reliability.SimulateAll(cfg)
	if err != nil {
		log.Fatal(err)
	}
	tbl := stats.NewTable("policy", "P(fail)", "improvement vs SECDED")
	var secded float64
	for _, res := range results {
		if res.Policy == reliability.SECDED {
			secded = res.Probability
		}
		imp := "-"
		if secded > 0 && res.Probability > 0 && res.Policy != reliability.NoECC {
			imp = fmt.Sprintf("%.0fx", secded/res.Probability)
		}
		tbl.AddRow(res.Policy.String(), fmt.Sprintf("%.3e", res.Probability), imp)
	}
	fmt.Print(tbl)

	fmt.Println("\n-- The same guarantee, end to end on the functional engine --")
	// Kill one entire chip out of 9 and verify every line survives: the
	// property the Monte Carlo assumes Synergy provides.
	mem, err := core.New(core.Config{DataLines: 256})
	if err != nil {
		log.Fatal(err)
	}
	want := make([][]byte, 256)
	for i := range want {
		want[i] = bytes.Repeat([]byte{byte(i)}, core.LineSize)
		if err := mem.Write(uint64(i), want[i]); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := mem.Module().InjectPermanent(6, 0, mem.Module().Lines()-1, [8]byte{0xA5, 0x5A}); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, core.LineSize)
	corrected := 0
	for i := range want {
		info, err := mem.Read(uint64(i), buf)
		if err != nil {
			log.Fatalf("line %d unrecoverable: %v", i, err)
		}
		if !bytes.Equal(buf, want[i]) {
			log.Fatalf("line %d silently corrupted", i)
		}
		if info.Corrected || info.Preemptive {
			corrected++
		}
	}
	fmt.Printf("whole-chip failure (chip 6 of 9): all 256 lines recovered, %d needed the reconstruction engine\n", corrected)
	fmt.Printf("analytical SDC bound (§IV-A): %.1e FIT — thirteen orders below Chipkill's\n",
		reliability.SDCRate(100, 16, 64))
}
