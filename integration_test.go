// Integration tests across the repository's systems: the functional
// Synergy engine must actually deliver the guarantees the reliability
// Monte Carlo credits it with, and the performance engines must agree
// with the functional engine about what traffic exists.
package synergy_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"

	"synergy/internal/core"
	"synergy/internal/dimm"
	"synergy/internal/secmem"
)

// The reliability simulator classifies "one faulty chip per 9-chip
// rank" as correctable for Synergy. Drive the byte-accurate engine
// through every chip and every fault footprint shape and verify the
// classification holds end to end.
func TestFunctionalEngineMatchesReliabilityModelSingleChip(t *testing.T) {
	const lines = 256
	for chip := 0; chip < dimm.Chips; chip++ {
		for _, shape := range []struct {
			name   string
			lo, hi uint64 // fraction of the module's address space
		}{
			{"row-like", 10, 20},
			{"bank-like", 0, 127},
			{"whole-chip", 0, ^uint64(0)},
		} {
			mem, err := core.New(core.Config{DataLines: lines, FaultThreshold: 3})
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]byte, lines)
			for i := range want {
				want[i] = bytes.Repeat([]byte{byte(i), byte(chip)}, core.LineSize/2)
				if err := mem.Write(uint64(i), want[i]); err != nil {
					t.Fatal(err)
				}
			}
			hi := shape.hi
			if hi > mem.Module().Lines()-1 {
				hi = mem.Module().Lines() - 1
			}
			if _, err := mem.Module().InjectPermanent(chip, shape.lo, hi, [8]byte{0x99, 0x66}); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, core.LineSize)
			for i := 0; i < lines; i++ {
				if _, err := mem.Read(uint64(i), buf); err != nil {
					t.Fatalf("chip %d %s: line %d unrecoverable: %v", chip, shape.name, i, err)
				}
				if !bytes.Equal(buf, want[i]) {
					t.Fatalf("chip %d %s: line %d wrong data", chip, shape.name, i)
				}
			}
		}
	}
}

// Two faulty chips in the rank must be *detected* (attack, fail-closed)
// on any line where both footprints intersect — never silently wrong.
func TestFunctionalEngineFailsClosedOnTwoChips(t *testing.T) {
	mem, err := core.New(core.Config{DataLines: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, 64)
	for i := range want {
		want[i] = bytes.Repeat([]byte{byte(i)}, core.LineSize)
		mem.Write(uint64(i), want[i])
	}
	end := mem.Module().Lines() - 1
	mem.Module().InjectPermanent(1, 0, end, [8]byte{0x0F})
	mem.Module().InjectPermanent(5, 0, end, [8]byte{0xF0})
	buf := make([]byte, core.LineSize)
	for i := uint64(0); i < 64; i++ {
		_, err := mem.Read(i, buf)
		if err == nil {
			// The engine may only succeed if the data is right.
			if !bytes.Equal(buf, want[i]) {
				t.Fatalf("line %d: silent corruption under two-chip fault", i)
			}
			continue
		}
		if !errors.Is(err, core.ErrAttack) {
			t.Fatalf("line %d: unexpected error %v", i, err)
		}
	}
	if mem.Stats().AttacksDeclared == 0 {
		t.Fatal("no attacks declared under a two-chip fault")
	}
}

// The performance model's claim that Synergy has zero MAC traffic and
// the functional engine's layout must agree: the functional engine has
// no MAC region at all (the MAC rides in the ECC chip), while SGX-class
// layouts need one. This pins the core architectural claim from both
// sides.
func TestSynergyMACColocationConsistency(t *testing.T) {
	// Functional side: a data line's module footprint is exactly one
	// line (data+MAC together); verifying needs no second line beyond
	// the counter path.
	mem, err := core.New(core.Config{DataLines: 64})
	if err != nil {
		t.Fatal(err)
	}
	lay := mem.Layout()
	ctr, par, _ := lay.StorageOverheads()
	if ctr != 0.125 || par != 0.125 {
		t.Fatalf("overheads = %v/%v, want 0.125 each (no separate MAC region)", ctr, par)
	}

	// Performance side: Synergy's expansion of a read miss contains no
	// MAC transaction; SGX_O's contains exactly one.
	for _, tc := range []struct {
		design secmem.Design
		macTxs int
	}{{secmem.Synergy, 0}, {secmem.SGXO, 1}} {
		h, err := secmem.New(secmem.DefaultConfig(tc.design))
		if err != nil {
			t.Fatal(err)
		}
		_, txs := h.Read(12345)
		got := 0
		for _, tx := range txs {
			if tx.Cat == secmem.CatMAC {
				got++
			}
		}
		if got != tc.macTxs {
			t.Fatalf("%v: %d MAC transactions, want %d", tc.design, got, tc.macTxs)
		}
	}
}

// Long-running randomized cross-check: a sequence of reads, writes,
// transient faults (single chip at a time per line) and scrubs must
// never produce wrong data or an unwarranted attack.
func TestEndToEndSoakWithScrubbing(t *testing.T) {
	mem, err := core.New(core.Config{DataLines: 96})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2024))
	shadow := map[uint64][]byte{}
	faulted := map[uint64]int{}
	buf := make([]byte, core.LineSize)
	for op := 0; op < 4000; op++ {
		line := uint64(rng.Intn(96))
		switch rng.Intn(5) {
		case 0, 1:
			p := make([]byte, core.LineSize)
			rng.Read(p)
			if err := mem.Write(line, p); err != nil {
				t.Fatalf("op %d write: %v", op, err)
			}
			shadow[line] = p
			delete(faulted, line)
		case 2, 3:
			if _, err := mem.Read(line, buf); err != nil {
				t.Fatalf("op %d read(%d): %v", op, line, err)
			}
			want := shadow[line]
			if want == nil {
				want = make([]byte, core.LineSize)
			}
			if !bytes.Equal(buf, want) {
				t.Fatalf("op %d: line %d wrong data", op, line)
			}
			delete(faulted, line)
		case 4:
			chip := rng.Intn(dimm.Chips)
			if prev, ok := faulted[line]; ok {
				chip = prev
			}
			var mask [8]byte
			mask[rng.Intn(8)] = byte(1 + rng.Intn(255))
			if err := mem.Module().InjectTransient(mem.Layout().DataAddr(line), chip, mask); err != nil {
				t.Fatal(err)
			}
			faulted[line] = chip
		}
		if op%1000 == 999 {
			if _, err := mem.Scrub(context.Background()); err != nil {
				t.Fatalf("op %d scrub: %v", op, err)
			}
			faulted = map[uint64]int{}
		}
	}
}

// Odd-sized memories (data lines not a multiple of 8) must still lay
// out, protect and correct properly — partial counter and parity groups
// are a real corner of the address map.
func TestOddSizedMemory(t *testing.T) {
	for _, n := range []uint64{1, 3, 7, 9, 13, 65} {
		mem, err := core.New(core.Config{DataLines: n})
		if err != nil {
			t.Fatalf("DataLines=%d: %v", n, err)
		}
		want := make([][]byte, n)
		for i := uint64(0); i < n; i++ {
			want[i] = bytes.Repeat([]byte{byte(i + 1)}, core.LineSize)
			if err := mem.Write(i, want[i]); err != nil {
				t.Fatalf("n=%d write(%d): %v", n, i, err)
			}
		}
		// Fault the last line (partial parity group) and correct it.
		last := n - 1
		if err := mem.Module().InjectTransient(mem.Layout().DataAddr(last), 0, [8]byte{0xEE}); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, core.LineSize)
		info, err := mem.Read(last, buf)
		if err != nil {
			t.Fatalf("n=%d read(last): %v", n, err)
		}
		if !bytes.Equal(buf, want[last]) || !info.Corrected {
			t.Fatalf("n=%d: partial-group correction failed", n)
		}
	}
}
