package synergy_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math"
	"testing"

	"synergy"
)

// These tests throw hostile inputs at every public entry point and
// assert the facade degrades to errors — no panic escapes synergy.*.

// noPanic runs fn and converts any panic into a test failure naming the
// entry point, so one escaped panic doesn't abort the whole sweep.
func noPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Errorf("%s panicked: %v", name, r)
		}
	}()
	fn()
}

func TestAbuseConstructors(t *testing.T) {
	cases := []struct {
		name string
		cfg  synergy.Config
	}{
		{"zero config", synergy.Config{}},
		{"negative ranks", synergy.Config{DataLines: 16, Ranks: -3}},
		{"short enc key", synergy.Config{DataLines: 16, EncKey: []byte{1}}},
		{"short mac key", synergy.Config{DataLines: 16, MACKey: []byte{2, 3}}},
	}
	for _, tc := range cases {
		noPanic(t, "New/"+tc.name, func() {
			if _, err := synergy.New(tc.cfg); err == nil {
				t.Errorf("New(%s) accepted a bad config", tc.name)
			}
		})
	}
	noPanic(t, "New/more ranks than lines", func() {
		arr, err := synergy.New(synergy.Config{DataLines: 2, Ranks: 8})
		if err != nil {
			t.Errorf("New rejected ranks > lines: %v", err)
			return
		}
		buf := make([]byte, synergy.LineSize)
		if err := arr.Write(1, buf); err != nil {
			t.Errorf("write on sparse array: %v", err)
		}
	})
	noPanic(t, "NewDevice/nil store", func() {
		if _, err := synergy.NewDevice(nil, 0); err == nil {
			t.Error("NewDevice accepted a nil store")
		}
	})
}

func TestAbuseLineIO(t *testing.T) {
	arr, err := synergy.New(synergy.Config{DataLines: 16, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	good := make([]byte, synergy.LineSize)

	noPanic(t, "Read/max line", func() {
		if _, err := arr.Read(math.MaxUint64, good); !errors.Is(err, synergy.ErrOutOfRange) {
			t.Errorf("Read(MaxUint64): %v", err)
		}
	})
	noPanic(t, "Write/max line", func() {
		if err := arr.Write(math.MaxUint64, good); !errors.Is(err, synergy.ErrOutOfRange) {
			t.Errorf("Write(MaxUint64): %v", err)
		}
	})
	noPanic(t, "Read/nil dst", func() {
		if _, err := arr.Read(0, nil); !errors.Is(err, synergy.ErrBadLineSize) {
			t.Errorf("Read(nil): %v", err)
		}
	})
	noPanic(t, "Read/oversized dst", func() {
		if _, err := arr.Read(0, make([]byte, synergy.LineSize+1)); !errors.Is(err, synergy.ErrBadLineSize) {
			t.Errorf("Read(oversized): %v", err)
		}
	})
	noPanic(t, "Write/short src", func() {
		if err := arr.Write(0, good[:7]); !errors.Is(err, synergy.ErrBadLineSize) {
			t.Errorf("Write(short): %v", err)
		}
	})
	noPanic(t, "ReadBatch/nil everything", func() {
		if _, err := arr.ReadBatch(nil, nil); err != nil {
			t.Errorf("empty batch: %v", err)
		}
	})
	noPanic(t, "ReadBatch/buffer mismatch", func() {
		if _, err := arr.ReadBatch([]uint64{0, 1, 2}, good); !errors.Is(err, synergy.ErrBadLineSize) {
			t.Errorf("ReadBatch(mismatch): %v", err)
		}
	})
	noPanic(t, "WriteBatch/out of range", func() {
		if err := arr.WriteBatch([]uint64{0, math.MaxUint64}, make([]byte, 2*synergy.LineSize)); !errors.Is(err, synergy.ErrOutOfRange) {
			t.Errorf("WriteBatch(oor): %v", err)
		}
	})
}

func TestAbuseMaintenanceSurface(t *testing.T) {
	arr, err := synergy.New(synergy.Config{DataLines: 16, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}

	noPanic(t, "Rank/hostile index", func() {
		if arr.Rank(-1) != nil || arr.Rank(2) != nil || arr.Rank(1<<30) != nil {
			t.Error("Rank returned a Memory for an out-of-range index")
		}
	})
	for _, rc := range [][2]int{{-1, 0}, {2, 0}, {0, -1}, {0, 9}, {1 << 20, 1 << 20}} {
		noPanic(t, "RepairChip/bad rank-chip", func() {
			if err := arr.RepairChip(rc[0], rc[1]); err == nil {
				t.Errorf("RepairChip(%d, %d) accepted", rc[0], rc[1])
			}
		})
	}

	rank := arr.Rank(0)
	noPanic(t, "InjectTransient/bad chip", func() {
		if err := rank.InjectTransient(0, 17, [8]byte{1}); err == nil {
			t.Error("InjectTransient accepted chip 17")
		}
	})
	noPanic(t, "InjectTransient/bad addr", func() {
		if err := rank.InjectTransient(math.MaxUint64, 0, [8]byte{1}); err == nil {
			t.Error("InjectTransient accepted an out-of-range address")
		}
	})
	noPanic(t, "InjectPermanent/inverted range", func() {
		if _, err := rank.InjectPermanent(3, 10, 2, [8]byte{1}); err == nil {
			t.Error("InjectPermanent accepted lo > hi")
		}
	})
	noPanic(t, "ClearFault/bogus id", func() {
		if err := rank.ClearFault(424242); err == nil {
			t.Error("ClearFault accepted an unknown fault id")
		}
	})
	noPanic(t, "Module.Slice/bad chip", func() {
		line, err := rank.Module().ReadLine(0)
		if err != nil {
			t.Errorf("ReadLine(0): %v", err)
			return
		}
		if line.Slice(-1) != nil || line.Slice(99) != nil {
			t.Error("Line.Slice returned data for a hostile chip index")
		}
	})

	noPanic(t, "Layout/hostile indices", func() {
		lay := rank.Layout()
		// Out-of-range lines map to an out-of-range module address,
		// which the module rejects — never a panic.
		addr := lay.DataAddr(math.MaxUint64)
		if err := rank.Module().InjectTransient(addr, 0, [8]byte{1}); err == nil {
			t.Error("out-of-range DataAddr was accepted by the module")
		}
		lay.CounterAddr(math.MaxUint64)
		lay.ParityAddr(math.MaxUint64)
		lay.TreeAddr(-1, 0)
		lay.TreeAddr(99, math.MaxUint64)
	})
	noPanic(t, "Scrub/cancelled ctx", func() {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := arr.Scrub(ctx); !errors.Is(err, context.Canceled) {
			t.Errorf("Scrub(cancelled): %v", err)
		}
	})
	noPanic(t, "StartScrubber/zero interval nil ctx", func() {
		s := arr.StartScrubber(nil, 0) //nolint:staticcheck // hostile input on purpose
		s.Stop()
		s.Stop() // double Stop is documented safe
	})
	noPanic(t, "ErrorLog/empty analyze", func() {
		rank.ErrorLog().Analyze(0)
	})
}

func TestAbuseDevice(t *testing.T) {
	arr, err := synergy.New(synergy.Config{DataLines: 8, Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := synergy.NewDevice(arr, 8)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3*synergy.LineSize)

	noPanic(t, "Device.ReadAt/negative offset", func() {
		if _, err := dev.ReadAt(buf, -1); err == nil {
			t.Error("ReadAt accepted a negative offset")
		}
	})
	noPanic(t, "Device.WriteAt/negative offset", func() {
		if _, err := dev.WriteAt(buf, -1); err == nil {
			t.Error("WriteAt accepted a negative offset")
		}
	})
	noPanic(t, "Device.ReadAt/past end", func() {
		if _, err := dev.ReadAt(buf, dev.Size()); err != io.EOF {
			t.Errorf("ReadAt(end): %v, want io.EOF", err)
		}
	})
	noPanic(t, "Device.ReadAt/straddles end", func() {
		n, err := dev.ReadAt(buf, dev.Size()-synergy.LineSize)
		if err != io.EOF || n != synergy.LineSize {
			t.Errorf("short read at end: n=%d err=%v", n, err)
		}
	})
	noPanic(t, "Device.WriteAt/past end", func() {
		if _, err := dev.WriteAt(buf, dev.Size()); err == nil {
			t.Error("WriteAt accepted an offset past the device end")
		}
	})
	noPanic(t, "Device.ReadAt/huge offset", func() {
		if _, err := dev.ReadAt(buf, math.MaxInt64-3); err == nil {
			t.Error("ReadAt accepted a near-MaxInt64 offset")
		}
	})
	noPanic(t, "Device/unaligned rmw", func() {
		msg := []byte("straddles two cachelines")
		if _, err := dev.WriteAt(msg, synergy.LineSize-5); err != nil {
			t.Errorf("unaligned WriteAt: %v", err)
			return
		}
		got := make([]byte, len(msg))
		if _, err := dev.ReadAt(got, synergy.LineSize-5); err != nil {
			t.Errorf("unaligned ReadAt: %v", err)
			return
		}
		if !bytes.Equal(got, msg) {
			t.Error("unaligned round trip corrupted data")
		}
	})
}

func TestIsFailClosed(t *testing.T) {
	arr, err := synergy.New(synergy.Config{DataLines: 16})
	if err != nil {
		t.Fatal(err)
	}
	line := bytes.Repeat([]byte{9}, synergy.LineSize)
	if err := arr.Write(3, line); err != nil {
		t.Fatal(err)
	}
	rank := arr.Rank(0)
	addr := rank.Layout().DataAddr(3)
	rank.Module().InjectTransient(addr, 1, [8]byte{1})
	rank.Module().InjectTransient(addr, 6, [8]byte{2})

	buf := make([]byte, synergy.LineSize)
	_, attackErr := arr.Read(3, buf)
	if !synergy.IsFailClosed(attackErr) || !errors.Is(attackErr, synergy.ErrAttack) {
		t.Fatalf("double corruption: %v, want fail-closed ErrAttack", attackErr)
	}
	_, poisonErr := arr.Read(3, buf)
	if !synergy.IsFailClosed(poisonErr) || !errors.Is(poisonErr, synergy.ErrPoisoned) {
		t.Fatalf("re-read of attacked line: %v, want fail-closed ErrPoisoned", poisonErr)
	}
	for _, err := range []error{nil, synergy.ErrOutOfRange, synergy.ErrBadLineSize, io.EOF} {
		if synergy.IsFailClosed(err) {
			t.Errorf("IsFailClosed(%v) = true", err)
		}
	}
}
